"""Unit tests for the campaign core (outcomes, pipeline, results)."""

import pytest

from repro.appservers import GlassFish, IisExpress, JBossAs
from repro.core.outcomes import (
    ClientTestRecord,
    NOT_APPLICABLE_OUTCOME,
    SKIPPED_OUTCOME,
    StepOutcome,
    StepStatus,
    classify,
)
from repro.core.pipeline import run_client_test
from repro.core.results import CampaignResult, CellStats, ServerRunReport
from repro.frameworks.client import (
    Axis1Client,
    MetroClient,
    SudsClient,
)
from repro.services import ServiceDefinition
from repro.typesystem import (
    CtorVisibility,
    Language,
    Property,
    Trait,
    TypeInfo,
    TypeKind,
)
from repro.typesystem.synthesis import throwable_properties
from repro.wsdl import read_wsdl_text


def _document(container, type_info):
    record = container.deploy(ServiceDefinition(type_info))
    assert record.accepted
    return read_wsdl_text(record.wsdl_text)


class TestClassification:
    def test_ok(self):
        outcome = classify(0, 0)
        assert outcome.status is StepStatus.OK
        assert not outcome.has_error and not outcome.has_warning

    def test_warning(self):
        outcome = classify(0, 2, codes=("w",))
        assert outcome.status is StepStatus.WARNING
        assert outcome.warning_count == 2

    def test_error_trumps_warning(self):
        outcome = classify(1, 2)
        assert outcome.status is StepStatus.ERROR
        assert outcome.has_error and outcome.has_warning

    def test_executed_flags(self):
        assert classify(0, 0).executed
        assert not SKIPPED_OUTCOME.executed
        assert not NOT_APPLICABLE_OUTCOME.executed


class TestPipeline:
    def test_clean_combination(self):
        document = _document(GlassFish(), TypeInfo(
            Language.JAVA, "pkg", "Plain", properties=(Property("size"),)
        ))
        record = run_client_test("metro", "metro", MetroClient(), document)
        assert record.generation.status is StepStatus.OK
        assert record.compilation.status is StepStatus.OK
        assert record.error_free

    def test_generation_error_skips_compilation(self):
        epr = TypeInfo(
            Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
            traits=frozenset({Trait.WS_ADDRESSING_EPR}),
        )
        document = _document(GlassFish(), epr)
        record = run_client_test("metro", "metro", MetroClient(), document)
        assert record.generation.status is StepStatus.ERROR
        assert record.compilation.status is StepStatus.SKIPPED

    def test_axis_partial_output_compiles_with_warning(self):
        epr = TypeInfo(
            Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
            traits=frozenset({Trait.WS_ADDRESSING_EPR}),
        )
        document = _document(GlassFish(), epr)
        record = run_client_test("metro", "axis1", Axis1Client(), document)
        assert record.generation.status is StepStatus.ERROR
        assert record.compilation.status is StepStatus.WARNING

    def test_compilation_error_classified(self):
        throwable = TypeInfo(
            Language.JAVA, "java.io", "LateError",
            properties=throwable_properties(),
            traits=frozenset({Trait.THROWABLE}),
        )
        document = _document(GlassFish(), throwable)
        record = run_client_test("metro", "axis1", Axis1Client(), document)
        assert record.generation.status is StepStatus.WARNING or record.generation.status is StepStatus.OK
        assert record.compilation.status is StepStatus.ERROR
        assert record.has_error

    def test_dynamic_tool_compilation_not_applicable(self):
        document = _document(GlassFish(), TypeInfo(
            Language.JAVA, "pkg", "Plain", properties=(Property("size"),)
        ))
        record = run_client_test("metro", "suds", SudsClient(), document)
        assert record.compilation.status is StepStatus.NOT_APPLICABLE

    def test_codes_recorded(self):
        epr = TypeInfo(
            Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
            traits=frozenset({Trait.WS_ADDRESSING_EPR}),
        )
        document = _document(GlassFish(), epr)
        record = run_client_test("metro", "metro", MetroClient(), document)
        assert "unresolved-import" in record.generation.codes


def _record(server="s", client="c", gen=(0, 0), comp=(0, 0)):
    return ClientTestRecord(
        server_id=server,
        client_id=client,
        service_name="svc",
        generation=classify(*gen),
        compilation=classify(*comp),
    )


class TestCellStats:
    def test_counts_tests_not_diagnostics(self):
        cell = CellStats()
        cell.add(_record(gen=(3, 2)))
        assert cell.gen_error_tests == 1
        assert cell.gen_warning_tests == 1
        assert cell.tests == 1

    def test_as_row_order(self):
        cell = CellStats()
        cell.add(_record(gen=(0, 1), comp=(1, 0)))
        assert cell.as_row() == (1, 0, 0, 1)

    def test_error_tests_sums_both_steps(self):
        cell = CellStats()
        cell.add(_record(gen=(1, 0)))
        cell.add(_record(comp=(1, 0)))
        assert cell.error_tests == 2


class TestCampaignResult:
    def test_add_record_indexes_cells(self):
        result = CampaignResult(server_ids=("s",), client_ids=("c",))
        result.add_record(_record())
        result.add_record(_record(gen=(1, 0)))
        assert result.cell("s", "c").tests == 2
        assert result.cell("s", "c").gen_error_tests == 1

    def test_fig4_series_aggregates_clients(self):
        result = CampaignResult(server_ids=("s",), client_ids=("a", "b"))
        result.servers["s"] = ServerRunReport(server_id="s", deployed=2)
        result.add_record(_record(client="a", gen=(1, 1)))
        result.add_record(_record(client="b", comp=(0, 1)))
        series = result.fig4_series("s")
        assert series["gen_errors"] == 1
        assert series["gen_warnings"] == 1
        assert series["comp_warnings"] == 1

    def test_totals_shape(self):
        result = CampaignResult(server_ids=("s",), client_ids=("a",))
        result.servers["s"] = ServerRunReport(
            server_id="s", services_total=3, deployed=2, refused=1
        )
        result.add_record(_record(client="a", gen=(1, 0)))
        totals = result.totals()
        assert totals["tests"] == 1
        assert totals["services_created"] == 3
        assert totals["services_refused"] == 1
        assert totals["error_situations"] == 1

    def test_sdg_warning_sets(self):
        report = ServerRunReport(server_id="s")
        report.wsi_failing.add("A")
        report.wsi_advisory_only.add("B")
        assert report.sdg_warnings == 2
        assert report.sdg_errors == 0
