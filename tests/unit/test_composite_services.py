"""Unit tests for composite (higher-complexity) services."""

import pytest

from repro.appservers import GlassFish, IisExpress, JBossAs
from repro.frameworks.registry import all_client_frameworks
from repro.runtime import run_full_lifecycle
from repro.services import CompositeServiceDefinition, compose_corpus
from repro.typesystem import (
    Catalog,
    CtorVisibility,
    Language,
    Property,
    SimpleType,
    Trait,
    TypeInfo,
    TypeKind,
)
from repro.wsdl import read_wsdl_text
from repro.wsdl.validator import is_structurally_valid
from repro.wsi import check_document


def _entry(name, language=Language.JAVA, traits=(), **kwargs):
    return TypeInfo(
        language, "pkg", name,
        properties=(Property("size", SimpleType.INT),),
        traits=frozenset(traits), **kwargs,
    )


def _composite(*names, language=Language.JAVA):
    return CompositeServiceDefinition(
        tuple(_entry(name, language) for name in names)
    )


class TestDefinition:
    def test_naming(self):
        service = _composite("Alpha", "Beta")
        assert service.name == "Compositepkg_Alphax2Service"
        assert service.operation_names == ("echoAlpha", "echoBeta")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeServiceDefinition(())

    def test_duplicate_member_names_rejected(self):
        with pytest.raises(ValueError):
            _composite("Alpha", "Alpha")

    def test_compose_corpus_groups(self):
        catalog = Catalog(
            Language.JAVA, [_entry(f"T{i}") for i in range(10)]
        )
        composites = compose_corpus(catalog, group_size=3)
        assert len(composites) == 3
        assert all(len(c.parameter_types) == 3 for c in composites)

    def test_compose_corpus_limit(self):
        catalog = Catalog(Language.JAVA, [_entry(f"T{i}") for i in range(30)])
        assert len(compose_corpus(catalog, group_size=2, limit=4)) == 4

    def test_compose_corpus_bad_group_size(self):
        catalog = Catalog(Language.JAVA, [_entry("A")])
        with pytest.raises(ValueError):
            compose_corpus(catalog, group_size=0)


class TestDeployment:
    def test_multi_operation_wsdl(self):
        record = GlassFish().deploy(_composite("Alpha", "Beta", "Gamma"))
        assert record.accepted
        document = read_wsdl_text(record.wsdl_text)
        assert [op.name for op in document.operations] == [
            "echoAlpha", "echoBeta", "echoGamma",
        ]
        assert len(document.messages) == 6
        assert is_structurally_valid(document)
        assert check_document(document).clean

    def test_any_unbindable_member_refuses_deployment(self):
        generic = _entry("Box", is_generic=True)
        service = CompositeServiceDefinition((_entry("Alpha"), generic))
        record = GlassFish().deploy(service)
        assert not record.accepted
        assert "generic" in record.reason

    def test_jbossws_async_member_swallows_interface(self):
        future = TypeInfo(
            Language.JAVA, "pkg", "Future",
            kind=TypeKind.INTERFACE, ctor=CtorVisibility.NONE,
            traits=frozenset({Trait.ASYNC_HANDLE}),
        )
        service = CompositeServiceDefinition((_entry("Alpha"), future))
        record = JBossAs().deploy(service)
        assert record.accepted
        document = read_wsdl_text(record.wsdl_text)
        assert document.operations == []

    def test_metro_refuses_async_member(self):
        future = TypeInfo(
            Language.JAVA, "pkg", "Future",
            kind=TypeKind.INTERFACE, ctor=CtorVisibility.NONE,
            traits=frozenset({Trait.ASYNC_HANDLE}),
        )
        service = CompositeServiceDefinition((_entry("Alpha"), future))
        assert not GlassFish().deploy(service).accepted

    def test_member_quirks_survive_in_composite(self):
        sdf = TypeInfo(
            Language.JAVA, "java.text", "SimpleDateFormat",
            properties=(Property("pattern"),),
            traits=frozenset({Trait.LOCALE_FORMAT}),
        )
        service = CompositeServiceDefinition((_entry("Alpha"), sdf))
        record = GlassFish().deploy(service)
        document = read_wsdl_text(record.wsdl_text)
        report = check_document(document)
        assert not report.conformant  # the duplicate attribute came along


class TestClientsOnComposites:
    @pytest.fixture()
    def composite_wsdl(self):
        record = GlassFish().deploy(_composite("Alpha", "Beta", "Gamma"))
        return read_wsdl_text(record.wsdl_text)

    @pytest.mark.parametrize("client_id", sorted(all_client_frameworks()))
    def test_all_clients_generate_all_operations(self, composite_wsdl, client_id):
        client = all_client_frameworks()[client_id]
        result = client.generate(composite_wsdl)
        assert result.succeeded
        names = [m.name for m in result.bundle.operation_methods]
        assert names == ["echoAlpha", "echoBeta", "echoGamma"]
        if client.requires_compilation:
            assert client.compiler.compile(result.bundle).succeeded

    def test_composite_with_pathological_member_fails_for_dotnet(self):
        sdf = TypeInfo(
            Language.JAVA, "java.text", "SimpleDateFormat",
            properties=(Property("pattern"),),
            traits=frozenset({Trait.LOCALE_FORMAT}),
        )
        service = CompositeServiceDefinition((_entry("Alpha"), sdf))
        record = GlassFish().deploy(service)
        document = read_wsdl_text(record.wsdl_text)
        clients = all_client_frameworks()
        assert not clients["dotnet-cs"].generate(document).succeeded
        assert clients["metro"].generate(document).succeeded

    def test_lifecycle_on_composite(self):
        record = GlassFish().deploy(_composite("Alpha", "Beta"))
        client = all_client_frameworks()["suds"]
        outcome = run_full_lifecycle(record, client, client_id="suds")
        assert outcome.reached_execution

    def test_wcf_composites(self):
        service = _composite("Alpha", "Beta", language=Language.CSHARP)
        record = IisExpress().deploy(service)
        assert record.accepted
        document = read_wsdl_text(record.wsdl_text)
        assert document.schema_prefix == "s"
        assert len(document.operations) == 2
