"""Unit tests for the interop matrix and service project writer."""

import os

import pytest

from repro.core.matrix import (
    BROKEN,
    FULL,
    PARTIAL,
    MatrixCell,
    fully_interoperable_pairs,
    interop_matrix,
    render_matrix,
)
from repro.services import ServiceDefinition, generate_corpus
from repro.services.project import write_service_project
from repro.typesystem import Language, Property, TypeInfo


class TestMatrixCell:
    def test_full_verdict(self):
        cell = MatrixCell("s", "c", tests=100, error_tests=0)
        assert cell.verdict == FULL
        assert cell.ok_ratio == 1.0

    def test_partial_verdict(self):
        cell = MatrixCell("s", "c", tests=100, error_tests=2)
        assert cell.verdict == PARTIAL

    def test_broken_verdict(self):
        cell = MatrixCell("s", "c", tests=100, error_tests=20)
        assert cell.verdict == BROKEN

    def test_empty_cell(self):
        cell = MatrixCell("s", "c", tests=0, error_tests=0)
        assert cell.ok_ratio == 0.0


class TestMatrixOverCampaign:
    def test_every_pair_has_a_cell(self, quick_campaign_result):
        matrix = interop_matrix(quick_campaign_result)
        assert len(matrix) == 33

    def test_error_free_pairs_match_table3(self, quick_campaign_result):
        """By the paper's §V standard only a handful of pairs survive
        with zero errors: the lazy PHP client everywhere, and C# against
        its own WCF platform (Table III: its only blemish is a warning)."""
        full = fully_interoperable_pairs(quick_campaign_result)
        assert set(full) == {
            ("metro", "zend"),
            ("jbossws", "zend"),
            ("wcf", "zend"),
            ("wcf", "dotnet-cs"),
        }

    def test_render_matrix_grid(self, quick_campaign_result):
        text = render_matrix(quick_campaign_result)
        assert "Interoperability matrix" in text
        assert "axis1" in text
        assert "FAIL" in text and "OK" in text

    def test_ratios_bounded(self, quick_campaign_result):
        for cell in interop_matrix(quick_campaign_result).values():
            assert 0.0 <= cell.ok_ratio <= 1.0


class TestProjectWriter:
    def _corpus(self, count=3):
        entries = [
            TypeInfo(Language.JAVA, "pkg", f"Alpha{i}",
                     properties=(Property("size"),))
            for i in range(count)
        ]
        return [ServiceDefinition(entry) for entry in entries]

    def test_java_layout(self, tmp_path):
        written = write_service_project(self._corpus(), str(tmp_path))
        sources = [p for p in written if p.endswith(".java")]
        assert len(sources) == 3
        assert all(
            os.path.join("src", "main", "java", "test", "services") in p
            for p in sources
        )

    def test_csharp_layout(self, tmp_path):
        entry = TypeInfo(Language.CSHARP, "System", "Thing",
                         properties=(Property("Size"),))
        written = write_service_project([ServiceDefinition(entry)], str(tmp_path))
        assert any(os.path.join("App_Code", "EchoSystem_Thing.cs") in p for p in written)

    def test_sources_compilable_shape(self, tmp_path):
        written = write_service_project(self._corpus(1), str(tmp_path))
        source = open(next(p for p in written if p.endswith(".java"))).read()
        assert "@WebService" in source
        assert "return input;" in source

    def test_limit(self, tmp_path):
        written = write_service_project(self._corpus(5), str(tmp_path), limit=2)
        assert len([p for p in written if p.endswith(".java")]) == 2

    def test_descriptor_written(self, tmp_path):
        written = write_service_project(self._corpus(), str(tmp_path))
        descriptor = next(p for p in written if p.endswith("PROJECT.txt"))
        assert "services written: 3" in open(descriptor).read()

    def test_rejects_non_service(self, tmp_path):
        with pytest.raises(TypeError):
            write_service_project(["nope"], str(tmp_path))

    def test_works_on_real_corpus_slice(self, quick_java_catalog, tmp_path):
        corpus = generate_corpus(quick_java_catalog)
        written = write_service_project(corpus, str(tmp_path), limit=10)
        assert len(written) == 11
