"""Unit tests for the compiler simulators."""

import pytest

from repro.artifacts import ArtifactBundle, CodeUnit, FieldDecl, MethodDecl, UnitKind
from repro.compilers import (
    CppCompiler,
    CSharpCompiler,
    JavaCompiler,
    JScriptCompiler,
    VisualBasicCompiler,
)


def _bundle(*units):
    bundle = ArtifactBundle(tool="t", service="s")
    bundle.units.extend(units)
    return bundle


def _bean(name="Bean", language="java", **kwargs):
    return CodeUnit(name, UnitKind.BEAN, language, **kwargs)


class TestJavaCompiler:
    def test_clean_unit_compiles(self):
        result = JavaCompiler().compile(_bundle(_bean(fields=[FieldDecl("a", "int")])))
        assert result.succeeded
        assert not result.warnings

    def test_duplicate_field_is_error(self):
        unit = _bean(fields=[FieldDecl("a", "int"), FieldDecl("a", "long")])
        result = JavaCompiler().compile(_bundle(unit))
        assert not result.succeeded
        assert result.errors[0].code == "duplicate-member"

    def test_case_differing_fields_allowed(self):
        unit = _bean(fields=[FieldDecl("value", "int"), FieldDecl("Value", "int")])
        assert JavaCompiler().compile(_bundle(unit)).succeeded

    def test_unresolved_reference_is_error(self):
        unit = _bean(methods=[MethodDecl("getX", references=("ghost",))])
        result = JavaCompiler().compile(_bundle(unit))
        assert result.errors[0].code == "unresolved-symbol"
        assert "ghost" in result.errors[0].message

    def test_reference_to_own_field_resolves(self):
        unit = _bean(
            fields=[FieldDecl("detail", "String")],
            methods=[MethodDecl("getDetail", references=("detail",))],
        )
        assert JavaCompiler().compile(_bundle(unit)).succeeded

    def test_reference_to_sibling_unit_resolves(self):
        stub = CodeUnit(
            "Stub", UnitKind.STUB, "java",
            methods=[MethodDecl("echo", references=("Bean",))],
        )
        assert JavaCompiler().compile(_bundle(_bean(), stub)).succeeded

    def test_reference_to_param_resolves(self):
        from repro.artifacts import ParamDecl

        unit = _bean(
            methods=[
                MethodDecl("setX", params=(ParamDecl("x", "int"),), references=("x",))
            ]
        )
        assert JavaCompiler().compile(_bundle(unit)).succeeded

    def test_raw_type_warns_once_per_compile(self):
        units = [
            _bean("A", fields=[FieldDecl("l", "ArrayList", raw_type=True)]),
            _bean("B", fields=[FieldDecl("m", "ArrayList", raw_type=True)]),
        ]
        result = JavaCompiler().compile(_bundle(*units))
        assert result.succeeded
        assert len(result.warnings) == 1
        assert "unchecked or unsafe" in result.warnings[0].message

    def test_duplicate_enum_constant_is_error(self):
        unit = CodeUnit(
            "E", UnitKind.ENUM, "java", enum_constants=["A", "B", "A"]
        )
        result = JavaCompiler().compile(_bundle(unit))
        assert result.errors[0].code == "duplicate-enum-constant"


class TestVisualBasicCompiler:
    def test_case_insensitive_field_collision(self):
        unit = _bean(
            language="vb",
            fields=[FieldDecl("Text", "String"), FieldDecl("text", "String")],
        )
        result = VisualBasicCompiler().compile(_bundle(unit))
        assert not result.succeeded
        assert result.errors[0].code == "duplicate-member"

    def test_field_method_collision_case_insensitive(self):
        unit = _bean(
            language="vb",
            fields=[FieldDecl("value", "String")],
            methods=[MethodDecl("VALUE")],
        )
        result = VisualBasicCompiler().compile(_bundle(unit))
        assert result.errors[0].code == "member-method-collision"

    def test_case_insensitive_reference_resolution(self):
        unit = _bean(
            language="vb",
            fields=[FieldDecl("Detail", "String")],
            methods=[MethodDecl("GetDetail", references=("detail",))],
        )
        assert VisualBasicCompiler().compile(_bundle(unit)).succeeded


class TestCSharpCompiler:
    def test_case_differing_members_allowed(self):
        unit = _bean(
            language="csharp",
            fields=[FieldDecl("Text", "string"), FieldDecl("text", "string")],
        )
        assert CSharpCompiler().compile(_bundle(unit)).succeeded

    def test_no_raw_type_warnings(self):
        unit = _bean(
            language="csharp",
            fields=[FieldDecl("l", "ArrayList", raw_type=True)],
        )
        assert not CSharpCompiler().compile(_bundle(unit)).warnings


class TestJScriptCompiler:
    def test_crash_flag_produces_internal_crash(self):
        unit = _bean(language="jscript")
        unit.flags.add("crash-compiler")
        result = JScriptCompiler().compile(_bundle(unit))
        assert not result.succeeded
        assert result.errors[0].message == "131 INTERNAL COMPILER CRASH"

    def test_crash_preempts_other_checks(self):
        crasher = _bean("A", language="jscript")
        crasher.flags.add("crash-compiler")
        broken = _bean(
            "B", language="jscript",
            methods=[MethodDecl("f", references=("ghost",))],
        )
        result = JScriptCompiler().compile(_bundle(crasher, broken))
        assert len(result.errors) == 1

    def test_missing_helper_is_unresolved(self):
        unit = _bean(
            language="jscript",
            methods=[MethodDecl("FromXml", references=("ToNullableArray",))],
        )
        result = JScriptCompiler().compile(_bundle(unit))
        assert result.errors[0].code == "unresolved-symbol"


class TestCppCompiler:
    def test_gsoap_builtins_resolve(self):
        unit = CodeUnit(
            "Header", UnitKind.HEADER, "cpp",
            methods=[MethodDecl("call", references=("soap", "_XML"))],
        )
        assert CppCompiler().compile(_bundle(unit)).succeeded


@pytest.mark.parametrize(
    "compiler_class,name",
    [
        (JavaCompiler, "javac"),
        (CSharpCompiler, "csc"),
        (VisualBasicCompiler, "vbc"),
        (JScriptCompiler, "jsc"),
        (CppCompiler, "g++"),
    ],
)
def test_compiler_names(compiler_class, name):
    assert compiler_class().name == name
