"""Unit tests for the wsinterop CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_run_flags(self):
        args = build_parser().parse_args(["run", "--quick", "--csv", "x.csv"])
        assert args.quick and args.csv == "x.csv"

    @pytest.mark.parametrize(
        "command", ["run", "resilience", "invoke", "regress"]
    )
    def test_transport_flag(self, command):
        extra = (
            ["--baseline-dir", "b"] if command == "regress" else []
        )
        args = build_parser().parse_args([command] + extra)
        assert args.transport == "memory"
        args = build_parser().parse_args(
            [command, "--transport", "wire"] + extra
        )
        assert args.transport == "wire"

    def test_transport_choices_are_closed(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--transport", "pigeon"])


class TestTransportGuards:
    def test_wire_kind_requires_wire_transport(self, capsys):
        rc = main(["resilience", "--quick", "--kinds", "reset",
                   "--sample", "1"])
        assert rc == 2
        assert "--transport wire" in capsys.readouterr().err

    def test_unknown_kind_lists_both_taxonomies(self, capsys):
        rc = main(["resilience", "--quick", "--kinds", "bogus"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "http-503" in err and "slowloris" in err

    def test_mixed_kinds_accepted_with_wire_transport(self):
        args = build_parser().parse_args(
            ["resilience", "--kinds", "http-503,reset",
             "--transport", "wire"]
        )
        assert args.kinds == "http-503,reset"


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out

    def test_corpus(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "3971" in out and "14082" in out and "22024" in out

    def test_wsdl_prints_document(self, capsys):
        assert main(["wsdl", "metro", "java.util.Date"]) == 0
        out = capsys.readouterr().out
        assert "<wsdl:definitions" in out

    def test_wsdl_refused_type(self, capsys):
        rc = main(["wsdl", "metro", "java.util.concurrent.Future"])
        assert rc == 1
        assert "refused" in capsys.readouterr().err

    def test_check_failing_service_exits_2(self, capsys):
        rc = main(["check", "metro", "java.text.SimpleDateFormat"])
        assert rc == 2
        assert "FAIL" in capsys.readouterr().out

    def test_check_passing_service_exits_0(self, capsys):
        rc = main(["check", "metro", "java.util.Date"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_lifecycle_success(self, capsys):
        rc = main(["lifecycle", "metro", "java.util.Date", "--client", "suds"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution:     ok" in out

    def test_lifecycle_failure_exit_code(self, capsys):
        rc = main(
            ["lifecycle", "wcf", "System.Data.DataSet", "--client", "metro"]
        )
        assert rc == 2
        assert "generation:    error" in capsys.readouterr().out

    def test_run_quick_with_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "cells.csv"
        json_path = tmp_path / "out.json"
        rc = main(
            ["run", "--quick", "--csv", str(csv_path), "--json", str(json_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tests:" in out
        assert csv_path.read_text().startswith("server,client")
        payload = json.loads(json_path.read_text())
        assert set(payload["servers"]) == {"metro", "jbossws", "wcf"}

    def test_run_save_then_analyze(self, tmp_path, capsys):
        saved = tmp_path / "saved.json"
        assert main(["run", "--quick", "--save", str(saved)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(saved)]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "Headline numbers" in out

    def test_experiments_quick_to_file(self, tmp_path, capsys):
        output = tmp_path / "EXP.md"
        assert main(["experiments", "--quick", "-o", str(output)]) == 0
        assert output.read_text().startswith("# EXPERIMENTS")

    def test_stats_quick(self, capsys):
        assert main(["stats", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Error-cause taxonomy" in out
        assert "odds ratio" in out

    def test_lifecycle_campaign_quick(self, capsys):
        assert main(["lifecycle-campaign", "--quick", "--sample", "15"]) == 0
        out = capsys.readouterr().out
        assert "Five-step lifecycle outcomes" in out
        assert "completion ratio" in out

    def test_matrix_quick(self, capsys):
        assert main(["matrix", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Interoperability matrix" in out
        assert "suds" in out

    def test_report_quick(self, capsys):
        rc = main(["report", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "Paper vs measured" in out
