"""Unit tests for the content-addressed baseline store."""

import json
import os

import pytest

from repro.core.canon import canonical_json
from repro.regress.baseline import BaselineError, BaselineStore


def _snapshot(kind, fingerprint="fp", status="pass", metric=0):
    return {
        "kind": kind,
        "fingerprint": fingerprint,
        "totals": {"tests": 1},
        "cells": {"s|c": {"status": status, "metrics": {"tests": metric}}},
    }


class TestAcceptAndLoad:
    def test_roundtrip(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        digests = store.accept({"run": _snapshot("run")})
        assert set(digests) == {"run"}
        loaded = store.load("run")
        assert loaded["cells"] == _snapshot("run")["cells"]
        assert loaded["fingerprint"] == "fp"
        assert store.digest("run") == digests["run"]

    def test_snapshot_files_are_content_addressed(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        digests = store.accept({"run": _snapshot("run")})
        entry = store.manifest()["campaigns"]["run"]
        assert entry["file"] == f"run-{digests['run'][:12]}.json"
        assert entry["digest"] == digests["run"]

    def test_partial_accept_keeps_other_campaigns(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run"), "fuzz": _snapshot("fuzz")})
        old_fuzz = store.digest("fuzz")
        store.accept({"run": _snapshot("run", metric=7)})
        assert store.digest("fuzz") == old_fuzz
        assert store.load("run")["cells"]["s|c"]["metrics"]["tests"] == 7

    def test_reaccept_collects_garbage(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        first_file = store.manifest()["campaigns"]["run"]["file"]
        store.accept({"run": _snapshot("run", metric=9)})
        names = set(os.listdir(str(tmp_path)))
        assert first_file not in names
        assert store.manifest()["campaigns"]["run"]["file"] in names

    def test_identical_accept_is_idempotent(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        first = store.accept({"invoke": _snapshot("invoke")})
        second = store.accept({"invoke": _snapshot("invoke")})
        assert first == second

    def test_unknown_kind_rejected(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        with pytest.raises(ValueError, match="unknown campaign kind"):
            store.accept({"banana": _snapshot("run")})


class TestClassifiedErrors:
    def test_missing_baseline(self, tmp_path):
        store = BaselineStore(str(tmp_path / "nope"))
        with pytest.raises(BaselineError) as excinfo:
            store.manifest()
        assert excinfo.value.kind == BaselineError.MISSING
        assert "--accept" in excinfo.value.hint

    def test_missing_campaign(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        with pytest.raises(BaselineError) as excinfo:
            store.load("fuzz")
        assert excinfo.value.kind == BaselineError.MISSING
        assert "fuzz" in excinfo.value.hint

    def test_corrupt_manifest(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        (tmp_path / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError) as excinfo:
            store.manifest()
        assert excinfo.value.kind == BaselineError.CORRUPT

    def test_truncated_snapshot_is_classified(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        name = store.manifest()["campaigns"]["run"]["file"]
        text = (tmp_path / name).read_text(encoding="utf-8")
        (tmp_path / name).write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(BaselineError) as excinfo:
            store.load("run")
        assert excinfo.value.kind == BaselineError.TAMPERED
        assert "re-accept" in excinfo.value.hint

    def test_tampered_snapshot_caught_even_if_parseable(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        name = store.manifest()["campaigns"]["run"]["file"]
        doctored = json.loads((tmp_path / name).read_text(encoding="utf-8"))
        doctored["cells"]["s|c"]["metrics"]["tests"] = 999
        (tmp_path / name).write_text(
            canonical_json(doctored), encoding="utf-8"
        )
        with pytest.raises(BaselineError) as excinfo:
            store.load("run")
        assert excinfo.value.kind == BaselineError.TAMPERED

    def test_deleted_snapshot_file(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        os.unlink(str(tmp_path / store.manifest()["campaigns"]["run"]["file"]))
        with pytest.raises(BaselineError) as excinfo:
            store.load("run")
        assert excinfo.value.kind == BaselineError.TAMPERED

    def test_fingerprint_guard(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run", fingerprint="old")})
        assert store.guard("run", "old") == "old"
        with pytest.raises(BaselineError) as excinfo:
            store.guard("run", "new")
        assert excinfo.value.kind == BaselineError.FINGERPRINT_MISMATCH
        assert "re-accept" in excinfo.value.hint

    def test_has_swallows_unusable_store(self, tmp_path):
        assert not BaselineStore(str(tmp_path / "nope")).has("run")

    def test_error_kinds_are_closed(self):
        with pytest.raises(ValueError):
            BaselineError("novel-kind", "boom")


class TestAcceptHistory:
    def test_accept_records_one_entry_per_campaign(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        digests = store.accept(
            {"run": _snapshot("run"), "fuzz": _snapshot("fuzz")},
            timestamp="2026-08-07T00:00:00Z", git_rev="abc1234",
        )
        entries = store.history()
        assert [entry["kind"] for entry in entries] == ["fuzz", "run"]
        for entry in entries:
            assert entry["digest"] == digests[entry["kind"]]
            assert entry["timestamp"] == "2026-08-07T00:00:00Z"
            assert entry["git_rev"] == "abc1234"

    def test_history_is_append_only_oldest_first(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")}, timestamp="t1")
        store.accept({"run": _snapshot("run", metric=7)}, timestamp="t2")
        timestamps = [entry["timestamp"] for entry in store.history()]
        assert timestamps == ["t1", "t2"]

    def test_history_survives_snapshot_garbage_collection(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")}, timestamp="t1")
        store.accept({"run": _snapshot("run", metric=9)}, timestamp="t2")
        # The GC dropped the stale .json snapshot but must never touch
        # the .jsonl history.
        assert "accepts.jsonl" in os.listdir(str(tmp_path))
        assert len(store.history()) == 2

    def test_torn_and_mangled_lines_skipped(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")}, timestamp="t1")
        with open(str(tmp_path / "accepts.jsonl"), "a",
                  encoding="utf-8") as handle:
            handle.write('{"kind": "run", "dig')  # torn mid-write
            handle.write("\n[1, 2, 3]\n\n")       # wrong shape + blank
        entries = store.history()
        assert len(entries) == 1
        assert entries[0]["timestamp"] == "t1"

    def test_no_history_file_is_empty(self, tmp_path):
        assert BaselineStore(str(tmp_path)).history() == []

    def test_metadata_defaults_to_empty_strings(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        entry = store.history()[0]
        assert entry["timestamp"] == ""
        assert entry["git_rev"] == ""


class TestAtomicity:
    def test_snapshot_written_before_manifest(self, tmp_path, monkeypatch):
        """If the promote dies before the manifest replace, the old
        baseline stays fully readable — the commit point is the manifest."""
        store = BaselineStore(str(tmp_path))
        store.accept({"run": _snapshot("run")})
        old_digest = store.digest("run")

        import repro.regress.baseline as baseline_module

        real_write = baseline_module.write_text_atomic

        def explode_on_manifest(text, path):
            if path.endswith("manifest.json"):
                raise RuntimeError("crash before commit point")
            return real_write(text, path)

        monkeypatch.setattr(
            baseline_module, "write_text_atomic", explode_on_manifest
        )
        with pytest.raises(RuntimeError):
            store.accept({"run": _snapshot("run", metric=5)})
        monkeypatch.undo()
        assert store.digest("run") == old_digest
        assert store.load("run")["cells"]["s|c"]["metrics"]["tests"] == 0
