"""Unit tests for the guarded lifecycle executor and its triage taxonomy."""

import dataclasses
import time

import pytest

from repro.appservers import GlassFish
from repro.core.outcomes import StepStatus
from repro.frameworks.client import MetroClient, SudsClient
from repro.runtime import (
    FATAL_BUCKETS,
    INLINE_LIMITS,
    GuardLimits,
    GuardedStep,
    InputBudgetExceeded,
    TriageBucket,
    classify_exception,
    run_full_lifecycle,
    run_guarded,
)
from repro.services import ServiceDefinition
from repro.typesystem import Language, Property, SimpleType, TypeInfo
from repro.wsdl.errors import WsdlReadError
from repro.xmlcore import XmlLimitError, XmlParseError
from repro.xsd.errors import SchemaError


def _deploy_plain():
    entry = TypeInfo(
        Language.JAVA, "pkg", "Plain",
        properties=(
            Property("size", SimpleType.INT),
            Property("tags", SimpleType.STRING, is_array=True),
        ),
    )
    record = GlassFish().deploy(ServiceDefinition(entry))
    assert record.accepted
    return record


class TestClassification:
    def test_tool_errors_are_parser_crash(self):
        for exc in (
            XmlParseError("boom"),
            WsdlReadError("boom"),
            SchemaError("boom"),
        ):
            assert classify_exception(exc) is TriageBucket.PARSER_CRASH

    def test_resource_errors_are_blowup(self):
        for exc in (
            XmlLimitError("deep", limit="max_depth"),
            InputBudgetExceeded("big"),
            RecursionError(),
            MemoryError(),
            OverflowError(),
        ):
            assert classify_exception(exc) is TriageBucket.RESOURCE_BLOWUP

    def test_limit_error_outranks_its_parse_error_parent(self):
        # XmlLimitError subclasses XmlParseError so legacy handlers keep
        # working, but the guard must triage it as a resource budget.
        exc = XmlLimitError("deep", limit="max_depth")
        assert isinstance(exc, XmlParseError)
        assert classify_exception(exc) is TriageBucket.RESOURCE_BLOWUP

    def test_everything_else_is_tool_internal(self):
        for exc in (RuntimeError("x"), KeyError("x"), ZeroDivisionError()):
            assert classify_exception(exc) is TriageBucket.TOOL_INTERNAL

    def test_fatal_buckets(self):
        assert TriageBucket.TIMEOUT in FATAL_BUCKETS
        assert TriageBucket.TOOL_INTERNAL in FATAL_BUCKETS
        assert TriageBucket.PARSER_CRASH not in FATAL_BUCKETS


class TestGuardedStep:
    def test_clean_run_returns_value(self):
        verdict = run_guarded("add", lambda a, b: a + b, 2, 3)
        assert verdict.ok and not verdict.fatal
        assert verdict.value == 5
        assert verdict.bucket is TriageBucket.CLEAN

    def test_classified_exception_becomes_verdict(self):
        def blow_up():
            raise XmlParseError("not xml")

        verdict = run_guarded("parse", blow_up)
        assert not verdict.ok
        assert verdict.bucket is TriageBucket.PARSER_CRASH
        assert "not xml" in verdict.detail
        assert isinstance(verdict.exception, XmlParseError)

    def test_unclassified_exception_is_tool_internal(self):
        verdict = run_guarded("gen", lambda: 1 / 0)
        assert verdict.bucket is TriageBucket.TOOL_INTERNAL
        assert verdict.fatal
        assert "ZeroDivisionError" in verdict.detail

    def test_timeout_abandons_the_step(self):
        limits = GuardLimits(deadline_seconds=0.05)
        verdict = run_guarded("slow", time.sleep, 5.0, limits=limits)
        assert verdict.bucket is TriageBucket.TIMEOUT
        assert verdict.fatal
        assert "deadline" in verdict.detail

    def test_inline_limits_run_without_watchdog(self):
        verdict = run_guarded("fast", lambda: "ok", limits=INLINE_LIMITS)
        assert verdict.ok and verdict.value == "ok"

    def test_input_budget(self):
        step = GuardedStep("read", str, limits=GuardLimits(max_input_bytes=10))
        step.check_input("short")
        with pytest.raises(InputBudgetExceeded):
            step.check_input("x" * 11)

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt("operator intent")

        with pytest.raises(KeyboardInterrupt):
            GuardedStep("step", interrupted, limits=INLINE_LIMITS).run()

    def test_detail_is_truncated(self):
        def verbose():
            raise XmlParseError("y" * 5000)

        verdict = run_guarded("parse", verbose)
        assert len(verdict.detail) <= 300


class TestGuardedLifecycle:
    def test_clean_lifecycle_unchanged(self):
        record = _deploy_plain()
        outcome = run_full_lifecycle(record, MetroClient(), client_id="metro")
        assert outcome.execution == StepStatus.OK
        assert outcome.triage == ""

    def test_corrupt_wsdl_text_is_classified_not_raised(self):
        record = _deploy_plain()
        broken = dataclasses.replace(
            record, wsdl_text=record.wsdl_text[: len(record.wsdl_text) // 3]
        )
        outcome = run_full_lifecycle(broken, SudsClient(), client_id="suds")
        assert outcome.generation == StepStatus.ERROR
        assert outcome.triage == TriageBucket.PARSER_CRASH.value
        assert "[parser-crash]" in outcome.detail

    def test_resource_blowup_wsdl_is_classified(self):
        record = _deploy_plain()
        point = record.wsdl_text.rfind("</")
        bomb = (
            record.wsdl_text[:point]
            + "x" * 2_000_000
            + record.wsdl_text[point:]
        )
        broken = dataclasses.replace(record, wsdl_text=bomb)
        outcome = run_full_lifecycle(broken, SudsClient(), client_id="suds")
        assert outcome.generation == StepStatus.ERROR
        assert outcome.triage == TriageBucket.RESOURCE_BLOWUP.value

    def test_oversized_input_hits_the_budget(self):
        record = _deploy_plain()
        limits = GuardLimits(deadline_seconds=None, max_input_bytes=100)
        outcome = run_full_lifecycle(
            record, SudsClient(), client_id="suds", limits=limits
        )
        assert outcome.generation == StepStatus.ERROR
        assert outcome.triage == TriageBucket.RESOURCE_BLOWUP.value

    def test_internal_generator_bug_is_contained(self):
        record = _deploy_plain()
        client = SudsClient()
        client.generate = lambda document: (_ for _ in ()).throw(
            RuntimeError("simulated harness bug")
        )
        outcome = run_full_lifecycle(record, client, client_id="suds")
        assert outcome.generation == StepStatus.ERROR
        assert outcome.triage == TriageBucket.TOOL_INTERNAL.value
        assert "simulated harness bug" in outcome.detail
