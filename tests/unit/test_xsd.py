"""Unit tests for the XSD substrate (model, builder, reader)."""

import pytest

from repro.typesystem import SimpleType
from repro.xmlcore import QName, XSD_NS, parse, serialize
from repro.xsd import (
    AnyParticle,
    AttributeDecl,
    ComplexType,
    ElementDecl,
    ElementParticle,
    IdentityConstraint,
    RefParticle,
    Schema,
    SchemaError,
    SchemaImport,
    SchemaReadError,
    SimpleTypeDecl,
    build_schema_element,
    read_schema,
    xsd_name_for,
)

_PREFIXES = {XSD_NS: "xsd", "urn:tns": "tns"}


def _roundtrip(schema):
    element = build_schema_element(schema, _PREFIXES)
    # QName attribute values need declared prefixes when serialized.
    element.set(QName("xmlns:xsd"), XSD_NS)
    element.set(QName("xmlns:tns"), "urn:tns")
    return read_schema(parse(serialize(element)))


class TestBuiltins:
    def test_simple_type_mapping(self):
        assert xsd_name_for(SimpleType.STRING) == QName(XSD_NS, "string")
        assert xsd_name_for(SimpleType.BYTES) == QName(XSD_NS, "base64Binary")
        assert xsd_name_for(SimpleType.DATETIME) == QName(XSD_NS, "dateTime")

    def test_char_maps_to_unsigned_short(self):
        assert xsd_name_for(SimpleType.CHAR).local == "unsignedShort"


class TestBuilder:
    def test_target_namespace_and_form(self):
        schema = Schema(target_namespace="urn:tns")
        element = build_schema_element(schema, _PREFIXES)
        assert element.get(QName("targetNamespace")) == "urn:tns"
        assert element.get(QName("elementFormDefault")) == "qualified"

    def test_import_without_location_omits_attribute(self):
        schema = Schema(target_namespace="urn:tns",
                        imports=[SchemaImport("urn:other")])
        element = build_schema_element(schema, _PREFIXES)
        import_el = element.find(QName(XSD_NS, "import"))
        assert import_el.get(QName("schemaLocation")) is None

    def test_unnamed_top_level_type_rejected(self):
        schema = Schema(target_namespace="urn:tns",
                        complex_types=[ComplexType()])
        with pytest.raises(SchemaError):
            build_schema_element(schema, _PREFIXES)

    def test_missing_prefix_rejected(self):
        schema = Schema(
            target_namespace="urn:tns",
            complex_types=[
                ComplexType(
                    name="T",
                    particles=[
                        ElementParticle("x", QName("urn:undeclared", "Y"))
                    ],
                )
            ],
        )
        with pytest.raises(SchemaError):
            build_schema_element(schema, _PREFIXES)

    def test_prefix_hint_controls_schema_prefix(self):
        schema = Schema(target_namespace="urn:tns")
        element = build_schema_element(schema, {XSD_NS: "s"}, prefix_hint="s")
        element.set(QName("xmlns:s"), XSD_NS)
        text = serialize(element)
        assert "<s:schema" in text


class TestRoundTrip:
    def test_element_with_named_type(self):
        schema = Schema(target_namespace="urn:tns")
        schema.complex_types.append(
            ComplexType(
                name="Bean",
                particles=[
                    ElementParticle("count", QName(XSD_NS, "int")),
                    ElementParticle(
                        "tags", QName(XSD_NS, "string"), min_occurs=0, max_occurs=None
                    ),
                ],
            )
        )
        schema.elements.append(
            ElementDecl("wrapper", type_name=QName("urn:tns", "Bean"))
        )
        back = _roundtrip(schema)
        bean = back.complex_type("Bean")
        assert bean.particles[0].type_name == QName(XSD_NS, "int")
        assert bean.particles[1].max_occurs is None
        assert back.element("wrapper").type_name == QName("urn:tns", "Bean")

    def test_inline_complex_type(self):
        schema = Schema(target_namespace="urn:tns")
        schema.elements.append(
            ElementDecl(
                "wrapper",
                inline_type=ComplexType(
                    particles=[ElementParticle("x", QName(XSD_NS, "string"))]
                ),
            )
        )
        back = _roundtrip(schema)
        assert back.element("wrapper").inline_type.particles[0].name == "x"

    def test_nillable_flag_survives(self):
        schema = Schema(target_namespace="urn:tns")
        schema.complex_types.append(
            ComplexType(
                name="T",
                particles=[
                    ElementParticle(
                        "x", QName(XSD_NS, "int"), nillable=True, max_occurs=None
                    )
                ],
            )
        )
        back = _roundtrip(schema)
        particle = back.complex_type("T").particles[0]
        assert particle.nillable and particle.max_occurs is None

    def test_ref_particle_survives(self):
        schema = Schema(target_namespace="urn:tns")
        schema.complex_types.append(
            ComplexType(name="T", particles=[RefParticle(QName(XSD_NS, "schema"))])
        )
        back = _roundtrip(schema)
        assert back.complex_type("T").particles[0].ref == QName(XSD_NS, "schema")

    def test_any_particle_survives(self):
        schema = Schema(target_namespace="urn:tns")
        schema.complex_types.append(
            ComplexType(
                name="T",
                particles=[
                    AnyParticle(process_contents="lax", min_occurs=0, max_occurs=None)
                ],
                mixed=True,
            )
        )
        back = _roundtrip(schema)
        ctype = back.complex_type("T")
        assert ctype.mixed
        any_particle = ctype.particles[0]
        assert any_particle.process_contents == "lax"
        assert any_particle.min_occurs == 0 and any_particle.max_occurs is None

    def test_attributes_survive_including_duplicates(self):
        duplicate = AttributeDecl("lenient", QName(XSD_NS, "boolean"))
        schema = Schema(target_namespace="urn:tns")
        schema.complex_types.append(
            ComplexType(name="T", attributes=[duplicate, duplicate])
        )
        back = _roundtrip(schema)
        attrs = back.complex_type("T").attributes
        assert len(attrs) == 2
        assert attrs[0].name == attrs[1].name == "lenient"

    def test_attribute_ref_survives(self):
        schema = Schema(target_namespace="urn:tns")
        schema.complex_types.append(
            ComplexType(
                name="T",
                attributes=[
                    AttributeDecl(
                        ref=QName("http://www.w3.org/XML/1998/namespace", "lang")
                    )
                ],
            )
        )
        element = build_schema_element(
            schema, {**_PREFIXES, "http://www.w3.org/XML/1998/namespace": "xml"}
        )
        element.set(QName("xmlns:xsd"), XSD_NS)
        back = read_schema(parse(serialize(element)))
        assert back.complex_type("T").attributes[0].ref.local == "lang"

    def test_identity_constraint_survives(self):
        schema = Schema(target_namespace="urn:tns")
        schema.complex_types.append(
            ComplexType(
                name="T",
                constraints=[
                    IdentityConstraint(
                        kind="keyref",
                        name="RowRef",
                        selector=".//row",
                        fields=("@id",),
                        refer=QName("urn:tns", "TKey"),
                    )
                ],
            )
        )
        back = _roundtrip(schema)
        constraint = back.complex_type("T").constraints[0]
        assert constraint.kind == "keyref"
        assert constraint.refer == QName("urn:tns", "TKey")
        assert constraint.fields == ("@id",)

    def test_simple_type_enum_survives(self):
        schema = Schema(target_namespace="urn:tns")
        schema.simple_types.append(
            SimpleTypeDecl(
                name="Status",
                base=QName(XSD_NS, "string"),
                enumerations=("Open", "Closed"),
            )
        )
        back = _roundtrip(schema)
        status = back.simple_type("Status")
        assert status.enumerations == ("Open", "Closed")

    def test_imports_survive(self):
        schema = Schema(
            target_namespace="urn:tns",
            imports=[SchemaImport("urn:a", "a.xsd"), SchemaImport("urn:b")],
        )
        back = _roundtrip(schema)
        assert back.imports[0].location == "a.xsd"
        assert back.imports[1].location is None


class TestReaderErrors:
    def test_non_schema_element_rejected(self):
        with pytest.raises(SchemaReadError):
            read_schema(parse("<a/>"))

    def test_nameless_global_element_rejected(self):
        text = (
            f'<xsd:schema xmlns:xsd="{XSD_NS}"><xsd:element/></xsd:schema>'
        )
        with pytest.raises(SchemaReadError):
            read_schema(parse(text))

    def test_non_numeric_occurs_is_classified(self):
        # Corrupted occurs bounds must surface as SchemaReadError, not
        # a raw ValueError escaping int().
        text = (
            f'<xsd:schema xmlns:xsd="{XSD_NS}">'
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element name="x" type="xsd:string" minOccurs="lots"/>'
            "</xsd:sequence></xsd:complexType></xsd:schema>"
        )
        with pytest.raises(SchemaReadError, match="occurs"):
            read_schema(parse(text))

    def test_local_element_without_type_rejected(self):
        text = (
            f'<xsd:schema xmlns:xsd="{XSD_NS}">'
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element name="x"/>'
            "</xsd:sequence></xsd:complexType></xsd:schema>"
        )
        with pytest.raises(SchemaReadError):
            read_schema(parse(text))

    def test_all_complex_types_includes_anonymous(self):
        schema = Schema(target_namespace="urn:tns")
        schema.elements.append(
            ElementDecl("w", inline_type=ComplexType())
        )
        schema.complex_types.append(ComplexType(name="T"))
        assert len(schema.all_complex_types()) == 2
