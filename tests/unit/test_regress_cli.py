"""Unit tests for the ``wsinterop regress`` gate: exit codes and hints."""

import json

import pytest

from repro.cli import main

#: Cheapest real sweep: one campaign kind, one service per server.
ARGS = ["regress", "--quick", "--campaigns", "invoke",
        "--sample", "1", "--payloads", "1"]


def _baseline(tmp_path):
    return str(tmp_path / "baseline")


@pytest.fixture(scope="module")
def accepted(tmp_path_factory):
    """A module-shared accepted baseline for the quick invoke sweep."""
    directory = str(tmp_path_factory.mktemp("regress") / "baseline")
    assert main(ARGS + ["--baseline-dir", directory, "--accept"]) == 0
    return directory


class TestGate:
    def test_missing_baseline_fails_before_sweeping(self, tmp_path, capsys):
        rc = main(ARGS + ["--baseline-dir", _baseline(tmp_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no baseline" in err
        assert "hint:" in err and "--accept" in err
        # The pre-sweep check means no sweep banner was printed.
        assert "finished in" not in err

    def test_accept_then_clean_rerun(self, accepted, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = main(ARGS + ["--baseline-dir", accepted,
                          "--report", str(report_path)])
        assert rc == 0
        assert "no drift" in capsys.readouterr().out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["clean"] is True
        assert report["entries"] == []
        digests = report["digests"]["invoke"]
        assert digests["baseline"] == digests["current"]

    def test_perturbation_exits_2_with_one_new_failure(
        self, accepted, tmp_path, capsys
    ):
        report_path = tmp_path / "drift.json"
        rc = main(ARGS + ["--baseline-dir", accepted, "--perturb", "invoke",
                          "--report", str(report_path)])
        assert rc == 2
        out = capsys.readouterr().out
        assert "new-failure" in out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert len(report["entries"]) == 1
        entry = report["entries"][0]
        assert entry["drift"] == "new-failure"
        assert report["counts"] == {"new-failure": 1}
        # The drill-down explains the cell: trace identity plus evidence.
        drilldown = entry["drilldown"]
        assert drilldown["trace_id"] and drilldown["server_span"]
        assert drilldown["spans"] or drilldown["exchanges"]

    def test_no_drill_skips_drilldown(self, accepted, tmp_path, capsys):
        report_path = tmp_path / "drift.json"
        rc = main(ARGS + ["--baseline-dir", accepted, "--perturb", "invoke",
                          "--no-drill", "--report", str(report_path)])
        assert rc == 2
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["entries"][0]["drilldown"] is None

    def test_tampered_baseline_exits_2_with_hint(
        self, accepted, tmp_path, capsys
    ):
        import os
        import shutil

        tampered = str(tmp_path / "tampered")
        shutil.copytree(accepted, tampered)
        manifest = json.loads(
            open(os.path.join(tampered, "manifest.json"), encoding="utf-8").read()
        )
        name = manifest["campaigns"]["invoke"]["file"]
        path = os.path.join(tampered, name)
        text = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])
        rc = main(ARGS + ["--baseline-dir", tampered])
        assert rc == 2
        err = capsys.readouterr().err
        assert "digest" in err or "truncated" in err
        assert "re-accept" in err

    def test_unclassified_drift_exits_3(
        self, accepted, monkeypatch, capsys
    ):
        import repro.regress
        from repro.regress.diff import UnclassifiedDriftError

        def explode(*args, **kwargs):
            raise UnclassifiedDriftError("invoke", "s|c|k", "novel delta")

        monkeypatch.setattr(repro.regress, "build_report", explode)
        rc = main(ARGS + ["--baseline-dir", accepted])
        assert rc == 3
        assert "harness bug" in capsys.readouterr().err


class TestAcceptHistory:
    def test_history_lists_accepts_without_sweeping(
        self, accepted, capsys
    ):
        rc = main(["regress", "--baseline-dir", accepted, "--history"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Baseline accept history" in captured.out
        assert "invoke" in captured.out
        # --history never sweeps: no campaign banner on stderr.
        assert "finished in" not in captured.err

    def test_history_of_empty_store(self, tmp_path, capsys):
        rc = main(["regress", "--baseline-dir", _baseline(tmp_path),
                   "--history"])
        assert rc == 0
        assert "no accepts recorded" in capsys.readouterr().out

    def test_accepted_at_recorded_verbatim(self, tmp_path, capsys):
        from repro.regress import BaselineStore

        directory = _baseline(tmp_path)
        rc = main(ARGS + ["--baseline-dir", directory, "--accept",
                          "--accepted-at", "2026-08-07T12:00:00Z"])
        assert rc == 0
        entries = BaselineStore(directory).history()
        assert [e["timestamp"] for e in entries] == ["2026-08-07T12:00:00Z"]
        rc = main(["regress", "--baseline-dir", directory, "--history"])
        assert rc == 0
        assert "2026-08-07T12:00:00Z" in capsys.readouterr().out


class TestArgumentValidation:
    def test_unknown_campaign_kind(self, tmp_path, capsys):
        rc = main(["regress", "--baseline-dir", _baseline(tmp_path),
                   "--campaigns", "run,banana"])
        assert rc == 2
        assert "banana" in capsys.readouterr().err

    def test_perturb_must_be_swept(self, tmp_path, capsys):
        rc = main(["regress", "--baseline-dir", _baseline(tmp_path),
                   "--campaigns", "run", "--perturb", "fuzz"])
        assert rc == 2
        assert "--perturb" in capsys.readouterr().err

    def test_baseline_dir_required(self):
        with pytest.raises(SystemExit):
            main(["regress"])
