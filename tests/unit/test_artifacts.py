"""Unit tests for the artifact model and renderers."""

import pytest

from repro.artifacts import (
    ArtifactBundle,
    CodeUnit,
    FieldDecl,
    MethodDecl,
    ParamDecl,
    UnitKind,
    render_unit,
)


def _stub(methods=()):
    return CodeUnit("ServiceStub", UnitKind.STUB, "java", methods=list(methods))


class TestBundle:
    def test_operation_methods_from_stub_and_proxy(self):
        bundle = ArtifactBundle(tool="t", service="s")
        bundle.units.append(_stub([MethodDecl("echo")]))
        bundle.units.append(
            CodeUnit("Bean", UnitKind.BEAN, "java", methods=[MethodDecl("getX")])
        )
        assert [m.name for m in bundle.operation_methods] == ["echo"]

    def test_unit_lookup(self):
        bundle = ArtifactBundle(tool="t", service="s")
        bean = CodeUnit("Bean", UnitKind.BEAN, "java")
        bundle.units.append(bean)
        assert bundle.unit("Bean") is bean
        assert bundle.unit("Nope") is None

    def test_partial_flag_defaults_false(self):
        assert not ArtifactBundle(tool="t", service="s").partial


class TestUnit:
    def test_field_and_method_names(self):
        unit = CodeUnit(
            "Bean",
            UnitKind.BEAN,
            "java",
            fields=[FieldDecl("a", "int"), FieldDecl("b", "String")],
            methods=[MethodDecl("getA")],
        )
        assert unit.field_names() == ["a", "b"]
        assert unit.method_names() == ["getA"]


class TestRenderers:
    @pytest.mark.parametrize(
        "language,needle",
        [
            ("java", "public class Bean {"),
            ("csharp", "public class Bean {"),
            ("vb", "Public Class Bean"),
            ("jscript", "class Bean {"),
            ("cpp", "struct Bean {"),
            ("php", "class Bean {"),
            ("python", "class Bean:"),
        ],
    )
    def test_class_opener_per_language(self, language, needle):
        unit = CodeUnit("Bean", UnitKind.BEAN, language)
        assert needle in render_unit(unit)

    def test_java_field_rendering(self):
        unit = CodeUnit(
            "Bean", UnitKind.BEAN, "java", fields=[FieldDecl("size", "int")]
        )
        assert "private int size;" in render_unit(unit)

    def test_vb_field_rendering(self):
        unit = CodeUnit(
            "Bean", UnitKind.BEAN, "vb", fields=[FieldDecl("Size", "Integer")]
        )
        assert "Public Size As Integer" in render_unit(unit)

    def test_php_field_rendering(self):
        unit = CodeUnit("Bean", UnitKind.BEAN, "php", fields=[FieldDecl("size", "")])
        assert "public $size;" in render_unit(unit)

    def test_method_params_java(self):
        unit = _stub(
            [MethodDecl("echo", params=(ParamDecl("input", "Bean"),), returns="Bean")]
        )
        assert "public Bean echo(Bean input)" in render_unit(unit)

    def test_method_params_vb(self):
        unit = CodeUnit(
            "Stub",
            UnitKind.STUB,
            "vb",
            methods=[
                MethodDecl("Echo", params=(ParamDecl("input", "Bean"),), returns="Bean")
            ],
        )
        assert "Public Function Echo(input As Bean) As Bean" in render_unit(unit)

    def test_enum_constants_rendered(self):
        unit = CodeUnit(
            "Status", UnitKind.ENUM, "java", enum_constants=["OPEN", "CLOSED"]
        )
        text = render_unit(unit)
        assert "OPEN," in text and "CLOSED," in text

    def test_python_method_rendering(self):
        unit = CodeUnit(
            "Proxy",
            UnitKind.PROXY,
            "python",
            methods=[MethodDecl("echo", params=(ParamDecl("input", ""),))],
        )
        assert "def echo(self, input):" in render_unit(unit)

    def test_non_unit_rejected(self):
        with pytest.raises(TypeError):
            render_unit("nope")
