"""Unit tests for the total drift taxonomy and the diff engine."""

import pytest

from repro.core.canon import CAMPAIGN_KINDS, FAILURE_METRIC
from repro.regress.diff import (
    DriftClass,
    UnclassifiedDriftError,
    classify_cell,
    diff_matrices,
    perturb_matrix,
    totals_delta,
)


def _cell(status="pass", **metrics):
    return {"status": status, "metrics": dict(metrics) or {"tests": 1}}


class TestTaxonomy:
    def test_identical_cells_do_not_drift(self):
        assert classify_cell("run", "a|b", _cell(), _cell()) is None

    def test_new_failure(self):
        entry = classify_cell(
            "run", "a|b", _cell("pass", errors=0), _cell("fail", errors=1)
        )
        assert entry.drift is DriftClass.NEW_FAILURE
        assert entry.changed_metrics == (("errors", 0, 1),)

    def test_fixed(self):
        entry = classify_cell(
            "run", "a|b", _cell("fail", errors=2), _cell("pass", errors=0)
        )
        assert entry.drift is DriftClass.FIXED

    def test_status_changed_covers_quarantine_moves(self):
        for old, new in (
            ("pass", "quarantined"),
            ("quarantined", "pass"),
            ("fail", "quarantined"),
            ("quarantined", "fail"),
        ):
            entry = classify_cell(
                "fuzz", "k", _cell(old, q=0), _cell(new, q=1)
            )
            assert entry.drift is DriftClass.STATUS_CHANGED, (old, new)

    def test_fidelity_changed(self):
        entry = classify_cell(
            "invoke", "k", _cell("pass", coerced=0, tests=3),
            _cell("pass", coerced=2, tests=3),
        )
        assert entry.drift is DriftClass.FIDELITY_CHANGED
        assert entry.changed_metrics == (("coerced", 0, 2),)

    def test_new_and_removed_cell(self):
        assert classify_cell("run", "k", None, _cell()).drift is (
            DriftClass.NEW_CELL
        )
        assert classify_cell("run", "k", _cell(), None).drift is (
            DriftClass.REMOVED_CELL
        )

    def test_entry_str_and_obj(self):
        entry = classify_cell(
            "run", "a|b", _cell("pass", errors=0), _cell("fail", errors=1)
        )
        assert "new-failure" in str(entry) and "errors: 0 -> 1" in str(entry)
        obj = entry.to_obj()
        assert obj["drift"] == "new-failure"
        assert obj["changed_metrics"] == [["errors", 0, 1]]


class TestTotality:
    """Anything outside the canonical form must raise, never skip."""

    def test_both_sides_missing(self):
        with pytest.raises(UnclassifiedDriftError):
            classify_cell("run", "k", None, None)

    def test_unknown_status(self):
        with pytest.raises(UnclassifiedDriftError, match="unknown cell status"):
            classify_cell("run", "k", _cell(), _cell("exploded"))

    def test_non_canonical_shape(self):
        with pytest.raises(UnclassifiedDriftError, match="canonical form"):
            classify_cell("run", "k", _cell(), {"status": "pass"})

    def test_non_integer_metrics(self):
        with pytest.raises(UnclassifiedDriftError, match="non-integer"):
            classify_cell(
                "run", "k", _cell(), {"status": "pass", "metrics": {"x": 0.5}}
            )
        with pytest.raises(UnclassifiedDriftError, match="non-integer"):
            classify_cell(
                "run", "k", _cell(), {"status": "pass", "metrics": {"x": True}}
            )

    def test_metric_schema_skew(self):
        with pytest.raises(UnclassifiedDriftError, match="metric sets differ"):
            classify_cell(
                "run", "k", _cell("pass", old_name=1), _cell("pass", new_name=1)
            )

    def test_error_carries_coordinates(self):
        with pytest.raises(UnclassifiedDriftError) as excinfo:
            classify_cell("fuzz", "a|b|c|d", _cell(), _cell("exploded"))
        assert excinfo.value.campaign == "fuzz"
        assert excinfo.value.cell == "a|b|c|d"


class TestDiffMatrices:
    def test_empty_on_identical(self):
        cells = {"b|x": _cell(), "a|y": _cell("fail", e=1)}
        assert diff_matrices("run", cells, dict(cells)) == []

    def test_canonical_ordering(self):
        before = {key: _cell("pass", e=0) for key in ("z|1", "a|2", "m|3")}
        after = {key: _cell("fail", e=1) for key in ("z|1", "a|2", "m|3")}
        entries = diff_matrices("run", before, after)
        assert [entry.cell for entry in entries] == ["a|2", "m|3", "z|1"]

    def test_one_sided_cells(self):
        entries = diff_matrices(
            "run", {"only-old": _cell()}, {"only-new": _cell()}
        )
        assert [(e.cell, e.drift) for e in entries] == [
            ("only-new", DriftClass.NEW_CELL),
            ("only-old", DriftClass.REMOVED_CELL),
        ]


class TestTotalsDelta:
    def test_moved_counters_only(self):
        delta = totals_delta(
            "run", {"a": 1, "b": 2, "c": 3}, {"a": 1, "b": 5, "c": 0}
        )
        assert delta == {"b": (2, 5), "c": (3, 0)}

    def test_key_skew_raises(self):
        with pytest.raises(UnclassifiedDriftError, match="counter sets"):
            totals_delta("run", {"a": 1}, {"b": 1})


class TestPerturbMatrix:
    @pytest.mark.parametrize("kind", CAMPAIGN_KINDS)
    def test_first_passing_cell_becomes_new_failure(self, kind):
        metric = FAILURE_METRIC[kind]
        cells = {
            "b|cell": _cell("pass", **{metric: 0}),
            "a|cell": _cell("fail", **{metric: 3}),
        }
        perturbed, description = perturb_matrix(kind, cells)
        entries = diff_matrices(kind, cells, perturbed)
        assert len(entries) == 1
        assert entries[0].cell == "b|cell"
        assert entries[0].drift is DriftClass.NEW_FAILURE
        assert "b|cell" in description and metric in description
        # The input map stayed untouched.
        assert cells["b|cell"]["status"] == "pass"

    def test_all_failing_falls_back_to_fidelity(self):
        cells = {"a": _cell("fail", parser_crash=1)}
        perturbed, _ = perturb_matrix("fuzz", cells)
        entries = diff_matrices("fuzz", cells, perturbed)
        assert len(entries) == 1
        assert entries[0].drift is DriftClass.FIDELITY_CHANGED

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            perturb_matrix("run", {})
