"""Failure-injection tests: feed the stack broken inputs on purpose."""

import pytest

from repro.appservers import GlassFish
from repro.frameworks.client import MetroClient, SudsClient
from repro.frameworks.client.engine import (
    _camel_to_upper_snake,
    _has_reference_cycle,
)
from repro.runtime import EchoServiceEndpoint, InMemoryHttpTransport
from repro.services import ServiceDefinition
from repro.soap.envelope import serialize_envelope
from repro.typesystem import Language, Property, TypeInfo
from repro.wsdl import WsdlDocument, read_wsdl_text
from repro.wsdl.model import SoapBindingInfo
from repro.xmlcore import Element, QName, XSD_NS
from repro.xsd import ComplexType, ElementDecl, ElementParticle, RefParticle, Schema


def _deployed():
    entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                     properties=(Property("size"),))
    record = GlassFish().deploy(ServiceDefinition(entry))
    return record


class TestMalformedWsdlInputs:
    def test_truncated_wsdl_text_raises_parse_error(self):
        from repro.xmlcore import XmlParseError

        record = _deployed()
        with pytest.raises(XmlParseError):
            read_wsdl_text(record.wsdl_text[: len(record.wsdl_text) // 2])

    def test_wsdl_with_operations_but_no_messages(self):
        """A silently inconsistent document: operations referencing
        messages that do not exist.  Tools generate Object-typed stubs
        rather than crashing."""
        record = _deployed()
        document = read_wsdl_text(record.wsdl_text)
        document.messages = []
        result = MetroClient().generate(document)
        assert result.succeeded
        method = result.bundle.operation_methods[0]
        assert method.returns == "Object"

    def test_wrapper_without_inline_type(self):
        record = _deployed()
        document = read_wsdl_text(record.wsdl_text)
        for schema in document.schemas:
            for decl in schema.elements:
                decl.inline_type = None
        result = MetroClient().generate(document)
        assert result.succeeded  # degraded, but no crash

    def test_document_with_no_schemas(self):
        document = WsdlDocument(
            name="Bare", target_namespace="urn:bare",
            binding=SoapBindingInfo(),
        )
        result = SudsClient().generate(document)
        assert result.succeeded
        assert any(d.code == "empty-client" for d in result.warnings)


class TestEndpointAbuse:
    def test_html_posted_to_endpoint(self):
        endpoint = EchoServiceEndpoint(_deployed())
        response = endpoint.handle("<html><body>oops</body></html>", {})
        assert response.status in (400, 500)

    def test_envelope_with_wrong_wrapper(self):
        endpoint = EchoServiceEndpoint(_deployed())
        body = serialize_envelope(
            body_element=Element(QName("urn:other", "differentOp"))
        )
        response = endpoint.handle(body, {})
        assert response.status == 500
        assert "no operation accepts" in response.body

    def test_empty_body_envelope(self):
        endpoint = EchoServiceEndpoint(_deployed())
        response = endpoint.handle(serialize_envelope(), {})
        assert response.status == 400

    def test_fault_responses_are_parseable_envelopes(self):
        from repro.soap import parse_envelope

        endpoint = EchoServiceEndpoint(_deployed())
        response = endpoint.handle("garbage", {})
        envelope = parse_envelope(response.body)
        assert envelope.is_fault
        assert envelope.fault.code


class TestEngineInternals:
    def test_camel_to_upper_snake(self):
        assert _camel_to_upper_snake("InProgress") == "IN_PROGRESS"
        assert _camel_to_upper_snake("inProgress") == "IN_PROGRESS"
        assert _camel_to_upper_snake("TimedOut") == "TIMED_OUT"
        assert _camel_to_upper_snake("OK") == "OK"

    def test_cycle_detection_positive(self):
        tns = "urn:t"
        schema = Schema(target_namespace=tns)
        schema.elements.append(
            ElementDecl(
                "wrapper",
                inline_type=ComplexType(
                    particles=[ElementParticle("input", QName(tns, "Bean"))]
                ),
            )
        )
        schema.complex_types.append(
            ComplexType(name="Bean", particles=[RefParticle(QName(tns, "wrapper"))])
        )
        document = WsdlDocument(name="C", target_namespace=tns, schemas=[schema])
        assert _has_reference_cycle(document)

    def test_cycle_detection_negative(self):
        record = _deployed()
        document = read_wsdl_text(record.wsdl_text)
        assert not _has_reference_cycle(document)

    def test_self_referencing_element_detected(self):
        tns = "urn:t"
        schema = Schema(target_namespace=tns)
        schema.elements.append(
            ElementDecl(
                "node",
                inline_type=ComplexType(
                    particles=[RefParticle(QName(tns, "node"))]
                ),
            )
        )
        document = WsdlDocument(name="C", target_namespace=tns, schemas=[schema])
        assert _has_reference_cycle(document)

    def test_foreign_refs_do_not_cycle(self):
        tns = "urn:t"
        schema = Schema(target_namespace=tns)
        schema.complex_types.append(
            ComplexType(name="T", particles=[RefParticle(QName(XSD_NS, "schema"))])
        )
        document = WsdlDocument(name="C", target_namespace=tns, schemas=[schema])
        assert not _has_reference_cycle(document)


class TestContainerEdgeCases:
    def test_same_service_deployed_twice_gets_same_url(self):
        server = GlassFish()
        entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                         properties=(Property("size"),))
        first = server.deploy(ServiceDefinition(entry))
        second = server.deploy(ServiceDefinition(entry))
        assert first.endpoint_url == second.endpoint_url
        assert len(server.deployments) == 2

    def test_transport_handler_exception_contained_as_500(self):
        """One buggy endpoint must not abort a whole campaign: the
        transport turns an unhandled handler exception into HTTP 500,
        like an app server rendering an error page."""
        transport = InMemoryHttpTransport()

        def broken(body, headers):
            raise RuntimeError("handler blew up")

        transport.register("http://x", broken)
        response = transport.post("http://x", "ping")
        assert response.status == 500
        assert "handler blew up" in response.body

    def test_compiler_on_empty_bundle(self):
        from repro.artifacts import ArtifactBundle
        from repro.compilers import JavaCompiler

        result = JavaCompiler().compile(ArtifactBundle(tool="t", service="s"))
        assert result.succeeded
        assert not result.diagnostics
