"""Unit coverage of the performance ledger, critical path and telemetry.

The ledger must store and reload profiles content-addressed (tampering
is classified, never a traceback), the diff must judge median shifts
against MAD noise (identical profiles drift zero; a 10x stage slowdown
is significant), the critical path must descend the most expensive
chain, and the progress stream must validate against its schema with
the same torn-tail tolerance every other append-only artifact has.
"""

import json
import os

import pytest

from repro.obs import (
    Histogram,
    PerfLedger,
    Tracer,
    cell_critical_paths,
    critical_path,
    diff_profiles,
    perf_profile,
    profile_digest,
    slowest_service_spans,
)
from repro.obs.perf import (
    LedgerError,
    STAGE_IMPROVED,
    STAGE_NEW,
    STAGE_OK,
    STAGE_REGRESSION,
    STAGE_REMOVED,
    trace_to_profile_inputs,
)
from repro.runtime.progress import (
    ProgressValidationError,
    ProgressWriter,
    read_progress,
    validate_progress_lines,
)


def _stage_histogram(values):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram.to_obj()


def _profile(stage_values, kind="run", trace_id="tid", workers=1,
             cells_per_sec=50.0):
    """A synthetic canonical profile with the given per-stage samples."""
    return {
        "format": 1,
        "kind": kind,
        "trace_id": trace_id,
        "workers": workers,
        "root_ms": 100.0,
        "spans_total": 10,
        "cells": 5,
        "cells_per_sec": cells_per_sec,
        "stages": {
            name: _stage_histogram(values)
            for name, values in stage_values.items()
        },
        "pairs": {},
        "worker_utilization": [],
        "wire": None,
        "wire_overhead_pct": None,
    }


def _traced_trace():
    """A small real trace built through the Tracer, in load_trace shape."""
    tracer = Tracer("tid")
    with tracer.span("server", server="metro"):
        with tracer.span("service", service="EchoA"):
            with tracer.span("test", server="metro", client="suds"):
                pass
        with tracer.span("test", server="metro", client="gsoap"):
            pass
    tracer.emit_root()
    return trace_to_profile_inputs(
        "tid", "run", 1, tracer.events, tracer.metrics
    )


class TestProfileExtraction:
    def test_profile_covers_stages_pairs_and_cells(self):
        profile = perf_profile(_traced_trace())
        assert profile["kind"] == "run"
        assert profile["trace_id"] == "tid"
        assert set(profile["stages"]) >= {"server", "service", "test"}
        assert profile["cells"] == 2  # two pair_ms observations
        assert "metro|suds" in profile["pairs"]
        assert profile["spans_total"] == len(
            [e for e in _traced_trace()["spans"]]
        )

    def test_profile_digest_is_content_addressed(self):
        first = perf_profile(_traced_trace())
        second = json.loads(json.dumps(first))  # round-trip copy
        assert profile_digest(first) == profile_digest(second)
        second["cells"] += 1
        assert profile_digest(first) != profile_digest(second)

    def test_cells_fall_back_to_cell_spans_without_pair_metrics(self):
        tracer = Tracer("tid")
        with tracer.span("cell", server="metro", client="suds"):
            pass
        tracer.emit_root()
        trace = trace_to_profile_inputs(
            "tid", "invoke", 1, tracer.events, tracer.metrics
        )
        assert perf_profile(trace)["cells"] == 1


class TestLedger:
    def test_record_then_reload_verbatim(self, tmp_path):
        ledger = PerfLedger(str(tmp_path / "perf"))
        profile = _profile({"test": [1.0, 2.0, 3.0]})
        entry = ledger.record(profile, recorded_at="t0", git_rev="abc",
                              seed=7)
        assert entry["digest"] == profile_digest(profile)
        assert entry["seed"] == 7
        entries, skipped = ledger.entries()
        assert skipped == 0
        assert [e["digest"] for e in entries] == [entry["digest"]]
        assert ledger.load_profile(entry) == profile

    def test_entries_filter_by_kind_and_trace_id(self, tmp_path):
        ledger = PerfLedger(str(tmp_path / "perf"))
        ledger.record(_profile({"a": [1.0]}, kind="run", trace_id="t1"))
        ledger.record(_profile({"a": [1.0]}, kind="fuzz", trace_id="t2"))
        runs, _ = ledger.entries(kind="run")
        assert [e["kind"] for e in runs] == ["run"]
        by_trace, _ = ledger.entries(trace_id="t2")
        assert [e["trace_id"] for e in by_trace] == ["t2"]

    def test_torn_trailing_line_skipped_with_count(self, tmp_path):
        ledger = PerfLedger(str(tmp_path / "perf"))
        ledger.record(_profile({"a": [1.0]}))
        ledger.record(_profile({"a": [2.0]}))
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "run", "digest": "dead')  # torn append
        entries, skipped = ledger.entries()
        assert len(entries) == 2
        assert skipped == 1

    def test_tampered_profile_is_classified(self, tmp_path):
        ledger = PerfLedger(str(tmp_path / "perf"))
        entry = ledger.record(_profile({"a": [1.0]}))
        path = os.path.join(ledger.directory, entry["file"])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(" ")
        with pytest.raises(LedgerError) as excinfo:
            ledger.load_profile(entry)
        assert excinfo.value.kind == LedgerError.TAMPERED
        assert excinfo.value.hint  # classified errors always carry a hint

    def test_resolve_reference_forms(self, tmp_path):
        ledger = PerfLedger(str(tmp_path / "perf"))
        first = ledger.record(_profile({"a": [1.0]}))
        second = ledger.record(_profile({"a": [2.0]}))
        assert ledger.resolve("latest") == second
        assert ledger.resolve("latest~1") == first
        assert ledger.resolve("0") == first
        assert ledger.resolve("-1") == second
        assert ledger.resolve(first["digest"][:6]) == first
        with pytest.raises(LedgerError):
            ledger.resolve("latest~9")
        with pytest.raises(LedgerError):
            ledger.resolve("zz")  # too short / unknown

    def test_missing_ledger_is_empty_not_an_error(self, tmp_path):
        entries, skipped = PerfLedger(str(tmp_path / "nope")).entries()
        assert entries == [] and skipped == 0
        with pytest.raises(LedgerError) as excinfo:
            PerfLedger(str(tmp_path / "nope")).resolve("latest")
        assert excinfo.value.kind == LedgerError.MISSING


class TestDiff:
    def test_identical_profiles_have_zero_drift(self):
        profile = _profile({"test": [1.0, 1.2, 0.9, 1.1] * 5})
        diff = diff_profiles(profile, profile)
        assert not diff.significant
        assert all(s.verdict == STAGE_OK for s in diff.stages)
        assert all(s.delta_ms == 0.0 for s in diff.stages)

    def test_ten_x_slowdown_is_significant(self):
        base = _profile({"test": [1.0, 1.2, 0.9, 1.1] * 5})
        slow = _profile({"test": [10.0, 12.0, 9.0, 11.0] * 5})
        diff = diff_profiles(base, slow)
        assert diff.significant
        (delta,) = diff.regressions
        assert delta.stage == "test"
        assert delta.ratio > 5.0

    def test_symmetric_speedup_is_improvement_not_regression(self):
        base = _profile({"test": [10.0, 12.0, 9.0, 11.0] * 5})
        fast = _profile({"test": [1.0, 1.2, 0.9, 1.1] * 5})
        diff = diff_profiles(base, fast)
        assert not diff.significant
        assert [s.verdict for s in diff.stages] == [STAGE_IMPROVED]

    def test_sub_floor_wobble_is_noise(self):
        base = _profile({"test": [0.10] * 20})
        wobble = _profile({"test": [0.30] * 20})  # 3x but under 0.5ms floor
        diff = diff_profiles(base, wobble)
        assert not diff.significant

    def test_wide_histogram_needs_more_than_its_own_noise(self):
        # Median shift of ~2ms against MAD >= several ms: not significant.
        base = _profile({"test": [1.0, 5.0, 20.0, 40.0] * 5})
        moved = _profile({"test": [2.0, 7.0, 22.0, 42.0] * 5})
        diff = diff_profiles(base, moved)
        assert not diff.significant

    def test_one_sided_stages_are_informational(self):
        base = _profile({"old": [1.0] * 5})
        current = _profile({"new": [1.0] * 5})
        diff = diff_profiles(base, current)
        verdicts = {s.stage: s.verdict for s in diff.stages}
        assert verdicts == {"old": STAGE_REMOVED, "new": STAGE_NEW}
        assert not diff.significant  # never gated

    def test_kind_mismatch_raises(self):
        with pytest.raises(ValueError):
            diff_profiles(
                _profile({"a": [1.0]}, kind="run"),
                _profile({"a": [1.0]}, kind="fuzz"),
            )

    def test_config_and_worker_mismatch_noted(self):
        diff = diff_profiles(
            _profile({"a": [1.0] * 3}, trace_id="t1", workers=1),
            _profile({"a": [1.0] * 3}, trace_id="t2", workers=4),
        )
        notes = " ".join(diff.notes)
        assert "different campaign configurations" in notes
        assert "worker counts differ" in notes

    def test_to_obj_round_trips_verdicts(self):
        base = _profile({"test": [1.0] * 20})
        slow = _profile({"test": [10.0] * 20})
        obj = diff_profiles(base, slow).to_obj()
        assert obj["significant"] is True
        assert obj["stages"][0]["verdict"] == STAGE_REGRESSION
        assert obj["thresholds"]["mad_threshold"] == 3.0


class TestCriticalPath:
    def _trace(self):
        tracer = Tracer("tid")
        with tracer.span("server", server="metro"):
            with tracer.span("service", service="EchoSlow"):
                pass
            with tracer.span("service", service="EchoFast"):
                pass
        tracer.emit_root()
        trace = trace_to_profile_inputs(
            "tid", "run", 1, tracer.events, tracer.metrics
        )
        # Rewrite durations deterministically: the walk ranks by ms.
        for span in trace["spans"]:
            if span["name"] == "campaign":
                span["ms"] = 100.0
            elif span["name"] == "server":
                span["ms"] = 90.0
            elif span["attrs"].get("service") == "EchoSlow":
                span["ms"] = 70.0
            else:
                span["ms"] = 10.0
        return trace

    def test_path_descends_most_expensive_child(self):
        path = critical_path(self._trace())
        assert [hop["name"] for hop in path] == [
            "campaign", "server", "service"
        ]
        assert path[-1]["attrs"]["service"] == "EchoSlow"
        assert path[0]["pct_of_root"] == 100.0
        # self time excludes children: server holds 90 - (70 + 10) = 10.
        assert path[1]["self_ms"] == pytest.approx(10.0)

    def test_empty_trace_has_empty_path(self):
        trace = {"meta": {}, "spans": [], "metrics_events": [],
                 "workers": [], "skipped_lines": 0}
        assert critical_path(trace) == []
        assert cell_critical_paths(trace) == []
        assert slowest_service_spans(trace) == []

    def test_slowest_services_carry_drilldown_span_ids(self):
        trace = self._trace()
        ranked = slowest_service_spans(trace, top=2)
        assert [item[1] for item in ranked] == ["EchoSlow", "EchoFast"]
        server, service, count, total, span_id, slow_ms = ranked[0]
        assert server == "metro" and count == 1
        assert slow_ms == pytest.approx(70.0)
        assert any(span["id"] == span_id for span in trace["spans"])


class TestProgressStream:
    def _run_writer(self, path, clock_values):
        clock = iter(clock_values)
        writer = ProgressWriter(
            str(path), campaign="run", eta_wall_hint_seconds=10.0,
            min_interval_seconds=0.0, clock=lambda: next(clock),
        )
        return writer

    def test_stream_validates_and_reads_back(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        writer = self._run_writer(path, [0.0, 1.0, 1.0, 2.0, 2.0, 3.0])
        writer.begin(total=4, workers=2)
        writer.update(done=1, poisoned=0, worker_rows=[
            {"worker": 1, "state": "busy", "unit": "u", "server": "metro",
             "busy_seconds": 0.5},
        ])
        writer.update(done=4, poisoned=0, worker_rows=[])
        writer.final(done=4, poisoned=0, wall_seconds=3.0)
        writer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert validate_progress_lines(lines) == 4
        stream = read_progress(str(path))
        assert stream["meta"]["total"] == 4
        assert stream["final"]["outcome"] == "completed"
        assert len(stream["updates"]) == 2

    def test_eta_prior_then_observed_rate(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        writer = self._run_writer(path, [0.0, 2.0, 2.0])
        writer.begin(total=4, workers=1)
        writer.update(done=2, poisoned=0, worker_rows=[])
        writer.close()
        stream = read_progress(str(path))
        # Before any completion: the ledger hint scaled to the sweep.
        assert stream["meta"]["eta_seconds"] == pytest.approx(10.0)
        # After 2 fresh completions in 2s: observed 1 unit/s, 2 left.
        assert stream["updates"][0]["eta_seconds"] == pytest.approx(2.0)

    def test_restored_units_do_not_count_as_fresh_rate(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        writer = self._run_writer(path, [0.0, 1.0, 1.0])
        writer.begin(total=10, workers=1, restored=5)
        writer.update(done=5, poisoned=0, worker_rows=[])
        writer.close()
        stream = read_progress(str(path))
        # No fresh completions yet: falls back to the hint fraction.
        assert stream["updates"][0]["eta_seconds"] == pytest.approx(5.0)

    def test_torn_tail_tolerated_garbage_elsewhere_rejected(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        writer = self._run_writer(path, [0.0])
        writer.begin(total=1, workers=1)
        writer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert validate_progress_lines(lines + ['{"type": "fin']) == 1
        with pytest.raises(ProgressValidationError):
            validate_progress_lines(['{"torn'] + lines)
        with pytest.raises(ProgressValidationError):
            validate_progress_lines([])
        with pytest.raises(ProgressValidationError):
            # First line must be the meta line.
            validate_progress_lines([
                '{"type": "final", "done": 1, "total": 1, "poisoned": 0, '
                '"wall_seconds": 1.0, "outcome": "completed"}'
            ])

    def test_unwritable_stream_degrades_to_silence(self, tmp_path):
        writer = ProgressWriter(
            str(tmp_path / "missing-dir" / "progress.jsonl"), campaign="run"
        )
        writer.begin(total=1, workers=1)  # must not raise
        writer.final(done=1, poisoned=0, wall_seconds=0.1)
        writer.close()
