"""Unit tests for socket-level fault injection and the shared taxonomy.

Satellite guarantee under test: every wire pathology raises exactly one
classified exception from the transport taxonomy shared with the
in-memory stack — the property that makes zero unclassified triage
escapes automatic.
"""

import threading

import pytest

from repro.faults import (
    DEFAULT_WIRE_FAULT_KINDS,
    FaultKind,
    FaultPlan,
    FaultingTransport,
    WireFaultKind,
    WireFaultPlan,
    WireFaultingTransport,
    fault_kind_of,
)
from repro.faults.wire import SLOWLORIS_DEADLINE, oneshot_fault_listener
from repro.runtime import InMemoryHttpTransport, WireClient
from repro.runtime.transport import (
    BadStatusLine,
    ChunkedEncodingError,
    ConnectionRefused,
    ConnectionReset,
    DeadlineExceeded,
    HeaderOverflow,
    PrematureEOF,
    ProtocolError,
    TransportError,
)

#: The documented pathology -> classified error contract, in full.
EXPECTED_ERRORS = {
    WireFaultKind.RESET: ConnectionReset,
    WireFaultKind.SLOWLORIS: DeadlineExceeded,
    WireFaultKind.HALF_CLOSE: PrematureEOF,
    WireFaultKind.TRUNCATION: PrematureEOF,
    WireFaultKind.GARBAGE_FRAMING: BadStatusLine,
    WireFaultKind.HEADER_OVERFLOW: HeaderOverflow,
    WireFaultKind.DUPLICATE_HEADER: ProtocolError,
    WireFaultKind.BAD_CHUNK: ChunkedEncodingError,
}


class TestOneshotListeners:
    @pytest.mark.parametrize("kind", DEFAULT_WIRE_FAULT_KINDS,
                             ids=lambda kind: kind.value)
    def test_each_pathology_raises_its_classified_error(self, kind):
        host, port, thread = oneshot_fault_listener(kind)
        timeout = (
            SLOWLORIS_DEADLINE if kind is WireFaultKind.SLOWLORIS else 5.0
        )
        with pytest.raises(EXPECTED_ERRORS[kind]) as excinfo:
            WireClient(timeout=timeout).post(host, port, "/x", "<probe/>")
        # The shared taxonomy: every wire error is a TransportError, so
        # lifecycle triage classifies it as a communication ERROR.
        assert isinstance(excinfo.value, TransportError)
        thread.join(timeout=15.0)
        assert not thread.is_alive(), f"{kind.value} listener leaked"


class TestWireFaultPlan:
    def test_rates_above_one_rejected(self):
        with pytest.raises(ValueError, match="above 1.0"):
            WireFaultPlan(7, {WireFaultKind.RESET: 0.6,
                              WireFaultKind.TRUNCATION: 0.6})

    def test_schedule_is_seed_deterministic(self):
        rates = {kind: 0.1 for kind in WireFaultKind}
        first = WireFaultPlan(42, rates)
        second = WireFaultPlan(42, rates)
        schedule = [first.next_event() for _ in range(50)]
        assert schedule == [second.next_event() for _ in range(50)]
        assert first.faults_scheduled == second.faults_scheduled

    def test_derive_matches_fresh_plan_with_derived_seed(self):
        from repro.faults.plan import derive_seed

        plan = WireFaultPlan.single(9, WireFaultKind.RESET, 0.5)
        derived = plan.derive("server", "client")
        fresh = WireFaultPlan.single(
            derive_seed(9, "server", "client"), WireFaultKind.RESET, 0.5
        )
        assert [derived.next_event() for _ in range(20)] == [
            fresh.next_event() for _ in range(20)
        ]

    def test_single_accepts_string_kind(self):
        plan = WireFaultPlan.single(1, "reset", 1.0)
        assert plan.next_event() is WireFaultKind.RESET


class TestWireFaultingTransport:
    def test_clean_request_passes_through_with_base_latency(self):
        inner = InMemoryHttpTransport()
        inner.register("http://x", lambda body, headers: "pong")
        faulting = WireFaultingTransport(
            inner, WireFaultPlan.single(3, WireFaultKind.RESET, 0.0,
                                        base_latency_ms=5.0)
        )
        response = faulting.post("http://x", "ping")
        assert response.body == "pong"
        assert response.elapsed_ms == 5.0
        assert faulting.total_faults_injected == 0

    def test_scheduled_fault_raises_classified_and_counts(self):
        inner = InMemoryHttpTransport()
        inner.register("http://x", lambda body, headers: "pong")
        faulting = WireFaultingTransport(
            inner, WireFaultPlan.single(3, WireFaultKind.TRUNCATION, 1.0)
        )
        with pytest.raises(PrematureEOF):
            faulting.post("http://x", "ping")
        assert faulting.faults_injected[WireFaultKind.TRUNCATION] == 1
        assert not [
            thread.name for thread in threading.enumerate()
            if thread.name.startswith("wire-fault-")
        ]


class TestSharedTaxonomy:
    """Satellite 1: both stacks raise the *same* classified errors."""

    def test_connection_refused_is_one_class_across_stacks(self):
        inner = InMemoryHttpTransport()
        inner.register("http://x", lambda body, headers: "pong")
        chaos = FaultingTransport(
            inner,
            FaultPlan.single(1, FaultKind.CONNECTION_REFUSED, 1.0),
        )
        with pytest.raises(ConnectionRefused) as memory_exc:
            chaos.post("http://x", "ping")

        import socket

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionRefused) as wire_exc:
            WireClient(timeout=2.0).post("127.0.0.1", port, "/x", "body")
        assert type(memory_exc.value) is type(wire_exc.value)

    def test_closed_transport_refuses_identically(self):
        from repro.runtime import WireTransport, close_transport

        for transport in (InMemoryHttpTransport(), WireTransport()):
            transport.register("http://x", lambda body, headers: "pong")
            close_transport(transport)
            with pytest.raises(ConnectionRefused):
                transport.post("http://x", "ping")


class TestFaultKindCoercion:
    def test_memory_kind_strings(self):
        assert fault_kind_of("http-503") is FaultKind.HTTP_503

    def test_wire_kind_strings(self):
        assert fault_kind_of("slowloris") is WireFaultKind.SLOWLORIS

    def test_enum_values_pass_through(self):
        assert fault_kind_of(FaultKind.LATENCY) is FaultKind.LATENCY
        assert fault_kind_of(WireFaultKind.RESET) is WireFaultKind.RESET

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            fault_kind_of("carrier-pigeon")

    def test_taxonomies_are_disjoint(self):
        memory = {kind.value for kind in FaultKind}
        wire = {kind.value for kind in WireFaultKind}
        assert not memory & wire
