"""Fault plans, chaos transport, and the resilient client runtime."""

import pytest

from repro.appservers import GlassFish
from repro.faults import FaultKind, FaultPlan, FaultingTransport, policy_for
from repro.faults.plan import derive_seed
from repro.faults.policies import CLIENT_POLICIES
from repro.frameworks.client import SudsClient
from repro.frameworks.registry import CLIENT_IDS
from repro.runtime import (
    CircuitOpen,
    ConnectionRefused,
    DeadlineExceeded,
    HttpResponse,
    InMemoryHttpTransport,
    ResiliencePolicy,
    ResilientTransport,
    run_full_lifecycle,
)
from repro.services import ServiceDefinition
from repro.typesystem import Language, Property, TypeInfo


def _deployed():
    entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                     properties=(Property("size"),))
    return GlassFish().deploy(ServiceDefinition(entry))


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        rates = {FaultKind.HTTP_500: 0.2, FaultKind.LATENCY: 0.1}
        a = FaultPlan(seed=42, rates=rates)
        b = FaultPlan(seed=42, rates=rates)
        assert [a.next_event() for _ in range(200)] == [
            b.next_event() for _ in range(200)
        ]

    def test_different_seeds_diverge(self):
        a = FaultPlan.single(1, FaultKind.HTTP_500, 0.5)
        b = FaultPlan.single(2, FaultKind.HTTP_500, 0.5)
        assert [a.next_event() for _ in range(64)] != [
            b.next_event() for _ in range(64)
        ]

    def test_zero_rate_never_faults(self):
        plan = FaultPlan.single(7, FaultKind.CONNECTION_REFUSED, 0.0)
        assert all(plan.next_event() is None for _ in range(100))

    def test_rate_one_always_faults(self):
        plan = FaultPlan.single(7, FaultKind.TRUNCATED_BODY, 1.0)
        events = [plan.next_event() for _ in range(50)]
        assert all(
            event is not None and event.kind is FaultKind.TRUNCATED_BODY
            for event in events
        )

    def test_rates_above_one_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(0, {FaultKind.HTTP_500: 0.7, FaultKind.HTTP_503: 0.6})

    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "a", "c")
        assert derive_seed(1, "a", "b") != derive_seed(2, "a", "b")

    def test_observed_rate_tracks_configured_rate(self):
        plan = FaultPlan.single(123, FaultKind.HTTP_503, 0.3)
        faults = sum(plan.next_event() is not None for _ in range(2000))
        assert 0.25 < faults / 2000 < 0.35


class TestFaultingTransport:
    def _transport(self, kind, rate=1.0):
        inner = InMemoryHttpTransport()
        inner.register("http://x/svc", lambda body, headers: "pong")
        plan = FaultPlan.single(5, kind, rate)
        return FaultingTransport(inner, plan)

    def test_clean_passthrough(self):
        transport = self._transport(FaultKind.HTTP_500, rate=0.0)
        response = transport.post("http://x/svc", "ping")
        assert response.ok and response.body == "pong"
        assert transport.total_faults_injected == 0

    def test_connection_refused_raises(self):
        transport = self._transport(FaultKind.CONNECTION_REFUSED)
        with pytest.raises(ConnectionRefused):
            transport.post("http://x/svc", "ping")
        assert transport.faults_injected[FaultKind.CONNECTION_REFUSED] == 1

    def test_http_errors_returned(self):
        assert self._transport(FaultKind.HTTP_500).post("u", "b").status == 500
        assert self._transport(FaultKind.HTTP_503).post("u", "b").status == 503

    def test_latency_stamps_slow_response(self):
        transport = self._transport(FaultKind.LATENCY)
        response = transport.post("http://x/svc", "ping")
        assert response.ok
        assert response.elapsed_ms == transport.plan.slow_latency_ms

    def test_truncation_halves_body(self):
        transport = self._transport(FaultKind.TRUNCATED_BODY)
        response = transport.post("http://x/svc", "ping")
        assert response.body == "po"

    def test_malformed_envelope_breaks_wellformedness(self):
        inner = InMemoryHttpTransport()
        inner.register("u", lambda body, headers: "<a><b>x</b></a>")
        transport = FaultingTransport(
            inner, FaultPlan.single(5, FaultKind.MALFORMED_ENVELOPE, 1.0)
        )
        from repro.xmlcore import XmlParseError, parse

        with pytest.raises(XmlParseError):
            parse(transport.post("u", "ping").body)


class TestHandlerCrashContainment:
    def test_handler_exception_becomes_http_500(self):
        transport = InMemoryHttpTransport()

        def broken(body, headers):
            raise RuntimeError("endpoint bug")

        transport.register("http://x/broken", broken)
        response = transport.post("http://x/broken", "ping")
        assert response.status == 500
        assert "endpoint bug" in response.body


class TestResilientTransport:
    def _flaky(self, failures, status=503):
        """A transport that fails ``failures`` times, then succeeds."""
        state = {"left": failures}

        class Flaky:
            def post(self, url, body, headers=None):
                if state["left"] > 0:
                    state["left"] -= 1
                    return HttpResponse(status=status, body="boom")
                return HttpResponse(status=200, body="ok")

        return Flaky()

    def test_naive_policy_surfaces_first_failure(self):
        transport = ResilientTransport(self._flaky(1), ResiliencePolicy())
        assert transport.post("u", "b").status == 503
        assert transport.last.attempts == 1

    def test_retry_recovers_and_is_recorded(self):
        policy = ResiliencePolicy(max_retries=2)
        transport = ResilientTransport(self._flaky(2), policy, seed=3)
        response = transport.post("u", "b")
        assert response.ok
        assert transport.last.attempts == 3
        assert transport.last.recovered
        assert transport.retries_performed == 2
        assert transport.last.backoff_ms > 0

    def test_budget_exhaustion_returns_last_failure(self):
        policy = ResiliencePolicy(max_retries=2)
        transport = ResilientTransport(self._flaky(5), policy)
        assert transport.post("u", "b").status == 503

    def test_deadline_exceeded_on_slow_response(self):
        class Slow:
            def post(self, url, body, headers=None):
                return HttpResponse(status=200, body="ok", elapsed_ms=99_999)

        transport = ResilientTransport(
            Slow(), ResiliencePolicy(timeout_ms=1_000)
        )
        with pytest.raises(DeadlineExceeded):
            transport.post("u", "b")

    def test_deterministic_backoff_jitter(self):
        policy = ResiliencePolicy(max_retries=3)
        a = ResilientTransport(self._flaky(3), policy, seed=11)
        b = ResilientTransport(self._flaky(3), policy, seed=11)
        a.post("u", "b")
        b.post("u", "b")
        assert a.last.backoff_ms == b.last.backoff_ms

    def test_circuit_breaker_opens_and_half_opens(self):
        policy = ResiliencePolicy(
            max_retries=0, breaker_threshold=2, breaker_cooldown=2
        )
        transport = ResilientTransport(self._flaky(2), policy)
        assert transport.post("u", "b").status == 503
        assert transport.post("u", "b").status == 503
        # Breaker open: requests are rejected without touching the wire.
        with pytest.raises(CircuitOpen):
            transport.post("u", "b")
        with pytest.raises(CircuitOpen):
            transport.post("u", "b")
        # Cooldown elapsed: the half-open probe goes through and closes.
        assert transport.post("u", "b").ok
        assert transport.post("u", "b").ok
        assert transport.breaker.trips == 1


class TestPolicies:
    def test_every_studied_client_has_a_policy(self):
        assert set(CLIENT_POLICIES) == set(CLIENT_IDS)

    def test_policy_for_unknown_client_is_naive(self):
        assert policy_for("not-a-client").max_retries == 0

    def test_retrying_stacks_retry_more_than_naive_ones(self):
        assert policy_for("metro").max_retries > policy_for("suds").max_retries


class TestResilientLifecycle:
    def test_degraded_communication_on_recovery(self):
        from repro.faults import FaultEvent

        record = _deployed()

        # Exactly one 503 then clean: the single-retry client recovers.
        class ScriptedPlan:
            slow_latency_ms = 30_000.0
            base_latency_ms = 5.0

            def __init__(self):
                self.events = [FaultEvent(FaultKind.HTTP_503)]

            def next_event(self):
                return self.events.pop(0) if self.events else None

        faulting = FaultingTransport(InMemoryHttpTransport(), ScriptedPlan())
        transport = ResilientTransport(
            faulting, ResiliencePolicy(max_retries=1), seed=1
        )
        outcome = run_full_lifecycle(
            record, SudsClient(), client_id="suds", transport=transport
        )
        from repro.core.outcomes import StepStatus

        assert outcome.communication is StepStatus.DEGRADED
        assert outcome.execution is StepStatus.OK

    def test_hard_failure_on_exhausted_budget(self):
        record = _deployed()
        plan = FaultPlan.single(0, FaultKind.CONNECTION_REFUSED, 1.0)
        faulting = FaultingTransport(InMemoryHttpTransport(), plan)
        transport = ResilientTransport(
            faulting, ResiliencePolicy(max_retries=1), seed=1
        )
        outcome = run_full_lifecycle(
            record, SudsClient(), client_id="suds", transport=transport
        )
        from repro.core.outcomes import StepStatus

        assert outcome.communication is StepStatus.ERROR
        assert "refused" in outcome.detail

    def test_truncated_body_is_a_communication_error(self):
        record = _deployed()
        plan = FaultPlan.single(0, FaultKind.TRUNCATED_BODY, 1.0)
        transport = FaultingTransport(InMemoryHttpTransport(), plan)
        outcome = run_full_lifecycle(
            record, SudsClient(), client_id="suds", transport=transport
        )
        from repro.core.outcomes import StepStatus

        assert outcome.communication is StepStatus.ERROR
        assert "malformed response" in outcome.detail
