"""Fine-grained tests of the generation engine's internals."""

import pytest

from repro.appservers import GlassFish, IisExpress
from repro.frameworks.client import (
    Axis2Client,
    DotNetJScriptClient,
    DotNetVisualBasicClient,
    GSoapClient,
    MetroClient,
)
from repro.frameworks.client.engine import _TYPE_MAPS, _array_type
from repro.services import ServiceDefinition
from repro.typesystem import (
    Language,
    Property,
    SimpleType,
    Trait,
    TypeInfo,
    TypeKind,
)
from repro.typesystem.model import script_unfriendly_properties
from repro.wsdl import read_wsdl_text


def _deploy_java(entry):
    record = GlassFish().deploy(ServiceDefinition(entry))
    assert record.accepted
    return read_wsdl_text(record.wsdl_text)


class TestTypeMaps:
    @pytest.mark.parametrize("lang", ["java", "csharp", "vb", "jscript", "cpp"])
    def test_core_builtins_mapped(self, lang):
        mapping = _TYPE_MAPS[lang]
        for xsd_local in ("string", "int", "boolean", "dateTime", "base64Binary"):
            assert xsd_local in mapping, (lang, xsd_local)

    def test_java_specifics(self):
        assert _TYPE_MAPS["java"]["decimal"] == "BigDecimal"
        assert _TYPE_MAPS["java"]["base64Binary"] == "byte[]"

    def test_vb_capitalizes_primitives(self):
        assert _TYPE_MAPS["vb"]["int"] == "Int"
        assert _TYPE_MAPS["vb"]["string"] == "String"

    def test_cpp_uses_std_types(self):
        assert _TYPE_MAPS["cpp"]["string"] == "std::string"

    def test_array_rendering_idioms(self):
        assert _array_type(MetroClient(), "String") == "String[]"
        assert _array_type(DotNetVisualBasicClient(), "String") == "String()"
        assert _array_type(GSoapClient(), "std::string") == "std::vector<std::string>"


class TestBeanShapes:
    def test_field_per_particle(self):
        entry = TypeInfo(
            Language.JAVA, "pkg", "Rich",
            properties=(
                Property("name", SimpleType.STRING),
                Property("count", SimpleType.INT),
                Property("rates", SimpleType.DOUBLE, is_array=True),
            ),
        )
        document = _deploy_java(entry)
        bean = MetroClient().generate(document).bundle.unit("Rich")
        assert bean.field_names() == ["name", "count", "rates"]
        assert bean.fields[2].type_text == "double[]"

    def test_axis2_local_prefix_convention(self):
        entry = TypeInfo(
            Language.JAVA, "pkg", "Simple",
            properties=(Property("label"),),
        )
        document = _deploy_java(entry)
        bean = Axis2Client().generate(document).bundle.unit("Simple")
        assert bean.field_names() == ["local_label"]

    def test_enum_unit_preserves_values_for_metro(self):
        record = IisExpress().deploy(
            ServiceDefinition(
                TypeInfo(
                    Language.CSHARP, "System", "Level",
                    kind=TypeKind.ENUM,
                    enum_values=("Low", "High"),
                )
            )
        )
        document = read_wsdl_text(record.wsdl_text)
        unit = MetroClient().generate(document).bundle.unit("Level")
        assert unit.enum_constants == ["Low", "High"]


class TestJScriptCrashBoundary:
    def _document_with_depth(self, depth):
        entry = TypeInfo(
            Language.JAVA, "pkg", f"Depth{depth}",
            properties=script_unfriendly_properties(depth=depth),
            traits=frozenset({Trait.SCRIPT_UNFRIENDLY}),
        )
        return _deploy_java(entry)

    @pytest.mark.parametrize("depth,expect_crash", [(1, False), (3, False), (4, True), (6, True)])
    def test_crash_threshold_is_four_nullable_arrays(self, depth, expect_crash):
        client = DotNetJScriptClient()
        result = client.generate(self._document_with_depth(depth))
        compiled = client.compiler.compile(result.bundle)
        crashed = any(d.code == "crash" for d in compiled.errors)
        assert crashed == expect_crash
        # Below the crash threshold the missing-helper bug still bites.
        if not expect_crash:
            assert any(d.code == "unresolved-symbol" for d in compiled.errors)

    def test_non_nillable_arrays_are_safe(self):
        entry = TypeInfo(
            Language.JAVA, "pkg", "SafeArrays",
            properties=(
                Property("a", SimpleType.INT, is_array=True),
                Property("b", SimpleType.INT, is_array=True),
            ),
        )
        client = DotNetJScriptClient()
        result = client.generate(_deploy_java(entry))
        assert client.compiler.compile(result.bundle).succeeded

    def test_nillable_string_arrays_are_safe(self):
        entry = TypeInfo(
            Language.JAVA, "pkg", "Strings",
            properties=(
                Property("a", SimpleType.STRING, is_array=True,
                         nillable_value=True),
            ),
        )
        client = DotNetJScriptClient()
        result = client.generate(_deploy_java(entry))
        assert client.compiler.compile(result.bundle).succeeded


class TestStubShapes:
    def test_stub_named_after_service(self):
        entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                         properties=(Property("size"),))
        document = _deploy_java(entry)
        bundle = MetroClient().generate(document).bundle
        stub = bundle.units[-1]
        assert stub.name.endswith("Stub")
        assert stub.name.startswith("Echo")

    def test_stub_parameter_typed_by_bean(self):
        entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                         properties=(Property("size"),))
        document = _deploy_java(entry)
        bundle = MetroClient().generate(document).bundle
        method = bundle.operation_methods[0]
        assert method.params[0].type_text == "Plain"
        assert method.returns == "Plain"
