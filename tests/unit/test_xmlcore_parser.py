"""Unit tests for the XML parser."""

import pytest

from repro.xmlcore import QName, XmlParseError, parse, parse_document


class TestBasics:
    def test_simple_element(self):
        root = parse("<a/>")
        assert root.name == QName("a")
        assert not root.content

    def test_nested_elements(self):
        root = parse("<a><b><c/></b></a>")
        assert root.children[0].children[0].name.local == "c"

    def test_text_content(self):
        assert parse("<a>hello</a>").text == "hello"

    def test_attributes_double_and_single_quotes(self):
        root = parse("<a x=\"1\" y='2'/>")
        assert root.get("x") == "1"
        assert root.get("y") == "2"

    def test_whitespace_around_equals(self):
        assert parse('<a x = "1"/>').get("x") == "1"

    def test_declaration_parsed(self):
        doc = parse_document('<?xml version="1.1" encoding="latin-1"?><a/>')
        assert doc.version == "1.1"
        assert doc.encoding == "latin-1"

    def test_standalone_parsed(self):
        doc = parse_document('<?xml version="1.0" standalone="yes"?><a/>')
        assert doc.standalone == "yes"

    def test_bom_stripped(self):
        assert parse("﻿<a/>").name.local == "a"

    def test_comments_skipped(self):
        root = parse("<a><!-- note --><b/><!-- end --></a>")
        assert [c.name.local for c in root.children] == ["b"]

    def test_processing_instruction_skipped(self):
        root = parse("<a><?php echo ?><b/></a>")
        assert len(root.children) == 1

    def test_doctype_skipped(self):
        root = parse('<!DOCTYPE html><a/>')
        assert root.name.local == "a"

    def test_cdata_preserved_verbatim(self):
        assert parse("<a><![CDATA[1 < 2 & x]]></a>").text == "1 < 2 & x"


class TestEntities:
    def test_predefined_entities(self):
        assert parse("<a>&lt;&gt;&amp;&quot;&apos;</a>").text == "<>&\"'"

    def test_decimal_char_ref(self):
        assert parse("<a>&#65;</a>").text == "A"

    def test_hex_char_ref(self):
        assert parse("<a>&#x41;</a>").text == "A"

    def test_entity_in_attribute(self):
        assert parse('<a x="a&amp;b"/>').get("x") == "a&b"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a>&nbsp;</a>")


class TestNamespaces:
    def test_default_namespace(self):
        root = parse('<a xmlns="urn:x"><b/></a>')
        assert root.name == QName("urn:x", "a")
        assert root.children[0].name == QName("urn:x", "b")

    def test_prefixed_namespace(self):
        root = parse('<p:a xmlns:p="urn:x"/>')
        assert root.name == QName("urn:x", "a")
        assert root.prefix_hint == "p"

    def test_default_namespace_undeclared(self):
        root = parse('<a xmlns="urn:x"><b xmlns=""/></a>')
        assert root.children[0].name == QName(None, "b")

    def test_inner_redeclaration_shadows(self):
        root = parse('<p:a xmlns:p="urn:x"><p:b xmlns:p="urn:y"/></p:a>')
        assert root.children[0].name == QName("urn:y", "b")

    def test_unprefixed_attribute_has_no_namespace(self):
        root = parse('<a xmlns="urn:x" k="v"/>')
        assert root.get(QName("k")) == "v"

    def test_prefixed_attribute_resolved(self):
        root = parse('<a xmlns:n="urn:n" n:k="v"/>')
        assert root.get(QName("urn:n", "k")) == "v"

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<p:a/>")

    def test_xml_prefix_predeclared(self):
        root = parse('<a xml:lang="en"/>')
        assert root.get(QName("http://www.w3.org/XML/1998/namespace", "lang")) == "en"

    def test_nsscope_recorded(self):
        root = parse('<a xmlns:t="urn:t" type="t:x"/>')
        assert root.resolve_qname_value("t:x") == QName("urn:t", "x")


class TestWellFormedness:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",  # unterminated
            "<a></b>",  # mismatched tags
            "<a/><b/>",  # two roots
            "<a x=1/>",  # unquoted attribute
            '<a x="1" x="2"/>',  # duplicate attribute
            '<a x="<"/>',  # raw < in attribute value
            "text only",  # no element
            "<a><!-- unterminated </a>",
            "<a><![CDATA[x</a>",
            "",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XmlParseError):
            parse(text)

    def test_duplicate_attribute_via_prefixes_rejected(self):
        with pytest.raises(XmlParseError):
            parse('<a xmlns:p="urn:x" xmlns:q="urn:x" p:k="1" q:k="2"/>')

    def test_content_after_root_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a/>junk")

    def test_error_reports_position(self):
        try:
            parse("<a>\n  <b>\n</a>")
        except XmlParseError as exc:
            assert exc.line >= 2
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")

    def test_trailing_comment_allowed(self):
        assert parse("<a/><!-- bye -->").name.local == "a"
