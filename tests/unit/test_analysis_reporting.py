"""Unit tests for derived analyses, reporting and export."""

import json

from repro.core.analysis import (
    error_free_wsi_warned_services,
    error_services_by_server,
    headline_numbers,
    same_framework_error_tests,
    wsi_predictive_power,
)
from repro.core.outcomes import ClientTestRecord, classify
from repro.core.results import CampaignResult, ServerRunReport
from repro.data import PAPER_TABLE3
from repro.reporting import (
    comparison_rows,
    fig4_comparison,
    render_fig4,
    render_table,
    render_table1,
    render_table2,
    render_table3,
    result_to_json,
    table3_comparison,
    table3_to_csv,
)


def _record(server, client, service, gen=(0, 0), comp=(0, 0)):
    return ClientTestRecord(
        server_id=server,
        client_id=client,
        service_name=service,
        generation=classify(*gen),
        compilation=classify(*comp),
    )


def _toy_result():
    result = CampaignResult(server_ids=("metro",), client_ids=("metro", "axis1"))
    report = ServerRunReport(
        server_id="metro", server_name="Metro", services_total=3,
        deployed=2, refused=1,
    )
    report.wsi_failing.add("SvcBad")
    result.servers["metro"] = report
    result.add_record(_record("metro", "metro", "SvcBad", gen=(1, 0)))
    result.add_record(_record("metro", "metro", "SvcGood"))
    result.add_record(_record("metro", "axis1", "SvcBad", gen=(0, 1), comp=(0, 1)))
    result.add_record(_record("metro", "axis1", "SvcGood", comp=(1, 1)))
    return result


class TestAnalysis:
    def test_same_framework_errors_counts_own_cells_only(self):
        result = _toy_result()
        # metro x metro has 1 generation error; axis1 is foreign.
        assert same_framework_error_tests(result) == 1

    def test_error_services_by_server(self):
        errors = error_services_by_server(_toy_result())
        assert errors["metro"] == {"SvcBad", "SvcGood"}

    def test_wsi_predictive_power(self):
        warned, with_errors, ratio = wsi_predictive_power(_toy_result())
        assert warned == 1 and with_errors == 1 and ratio == 1.0

    def test_error_free_wsi_warned_services_empty_here(self):
        assert error_free_wsi_warned_services(_toy_result()) == []

    def test_error_free_detection(self):
        result = _toy_result()
        result.servers["metro"].wsi_failing.add("SvcClean")
        survivors = error_free_wsi_warned_services(result)
        assert survivors == [("metro", "SvcClean")]

    def test_headline_numbers_keys(self):
        headlines = headline_numbers(_toy_result())
        for key in (
            "tests", "error_situations", "same_framework_error_tests",
            "wsi_predictive_ratio", "wsi_error_free_services",
        ):
            assert key in headlines


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(("A", "Blong"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[0].startswith("A  ")
        assert "-+-" in lines[1]

    def test_table1_lists_three_servers(self):
        text = render_table1()
        assert "GlassFish 4.0" in text
        assert "JBoss AS 7.2" in text
        assert "IIS" in text

    def test_table2_lists_eleven_clients(self):
        text = render_table2()
        assert text.count("\n") >= 12
        assert "suds Python client" in text
        assert "N/A" in text  # PHP/Python do not compile

    def test_table3_renders_all_cells(self):
        text = render_table3(_toy_result())
        assert "metro" in text and "axis1" in text
        assert "WS-I warnings" in text

    def test_fig4_renders_bars(self):
        text = render_fig4(_toy_result())
        assert "Fig. 4" in text
        assert "#" in text


class TestComparisons:
    def test_full_campaign_matches_reconstruction(self, full_campaign_result):
        rows = table3_comparison(full_campaign_result)
        mismatched = [row for row in rows if not row[-1]]
        assert mismatched == []

    def test_fig4_comparison_matches(self, full_campaign_result):
        mismatched = [row for row in fig4_comparison(full_campaign_result) if not row[-1]]
        assert mismatched == []

    def test_headline_comparison(self, full_campaign_result):
        rows = {metric: match for metric, __, __, match in comparison_rows(full_campaign_result)}
        # Everything except the paper's internally inconsistent
        # error_situations total must match exactly.
        assert rows["tests"]
        assert rows["services_created"]
        assert rows["comp_warning_tests"]
        assert rows["comp_error_tests"]
        assert rows["same_framework_error_tests"]
        assert rows["wsi_error_free_services"]
        assert rows["wsi_predictive_ratio"]
        assert not rows["error_situations"]  # documented: 1583 vs 1591

    def test_paper_table3_covers_all_cells(self):
        assert set(PAPER_TABLE3) == {"metro", "jbossws", "wcf"}
        for clients in PAPER_TABLE3.values():
            assert len(clients) == 11


class TestExport:
    def test_csv_has_row_per_cell(self):
        text = table3_to_csv(_toy_result())
        lines = [line for line in text.strip().splitlines() if line]
        assert len(lines) == 1 + 2  # header + 1 server x 2 clients

    def test_json_roundtrips(self):
        payload = json.loads(result_to_json(_toy_result()))
        assert payload["servers"]["metro"]["deployed"] == 2
        assert payload["cells"]["metro/metro"] == [0, 1, 0, 0]
        assert "headlines" in payload
