"""Calibration tests: the synthesized catalogs hit the paper's counts.

The binding predicates here are *re-implementations* of the server
framework rules (kept deliberately independent of the framework code) so
that a regression in either side shows up as a mismatch.
"""

import pytest

from repro.typesystem import (
    CtorVisibility,
    Trait,
    TypeKind,
    build_dotnet_catalog,
    build_java_catalog,
)
from repro.typesystem.quotas import (
    DotNetCatalogQuotas,
    JavaCatalogQuotas,
    QUICK_DOTNET_QUOTAS,
    QUICK_JAVA_QUOTAS,
)


def _metro_binds(entry):
    return (
        entry.is_concrete_class
        and not entry.is_generic
        and entry.ctor in (CtorVisibility.PUBLIC, CtorVisibility.PROTECTED)
    )


def _jbossws_binds(entry):
    if entry.has_trait(Trait.ASYNC_HANDLE):
        return True
    return (
        entry.is_concrete_class
        and not entry.is_generic
        and entry.ctor is CtorVisibility.PUBLIC
    )


def _wcf_binds(entry):
    return (
        entry.is_concrete_class
        and not entry.is_generic
        and entry.ctor is CtorVisibility.PUBLIC
    )


class TestJavaCalibration:
    def test_total_population(self, java_catalog):
        assert len(java_catalog) == 3971

    def test_metro_bindable_count(self, java_catalog):
        assert sum(1 for e in java_catalog if _metro_binds(e)) == 2489

    def test_jbossws_bindable_count(self, java_catalog):
        assert sum(1 for e in java_catalog if _jbossws_binds(e)) == 2248

    def test_jbossws_nested_in_metro_except_async(self, java_catalog):
        for entry in java_catalog:
            if _jbossws_binds(entry) and not entry.has_trait(Trait.ASYNC_HANDLE):
                assert _metro_binds(entry)

    def test_throwable_counts(self, java_catalog):
        throwables = java_catalog.with_trait(Trait.THROWABLE)
        assert len(throwables) == 520
        assert sum(1 for e in throwables if _metro_binds(e)) == 477
        assert sum(1 for e in throwables if _jbossws_binds(e)) == 412

    def test_script_unfriendly_counts(self, java_catalog):
        script = java_catalog.with_trait(Trait.SCRIPT_UNFRIENDLY)
        assert len(script) == 50
        assert all(_metro_binds(e) and _jbossws_binds(e) for e in script)

    def test_named_specials_present(self, java_catalog):
        assert java_catalog.require("java.util.concurrent.Future").has_trait(
            Trait.ASYNC_HANDLE
        )
        assert java_catalog.require("javax.xml.ws.Response").kind is TypeKind.INTERFACE
        assert java_catalog.require(
            "javax.xml.ws.wsaddressing.W3CEndpointReference"
        ).has_trait(Trait.WS_ADDRESSING_EPR)
        assert java_catalog.require("java.text.SimpleDateFormat").has_trait(
            Trait.LOCALE_FORMAT
        )
        assert java_catalog.require(
            "javax.xml.datatype.XMLGregorianCalendar"
        ).has_trait(Trait.XML_CALENDAR)

    def test_case_collider_deployable_on_both(self, java_catalog):
        collider = java_catalog.require("java.beans.FeatureDescriptor")
        assert _metro_binds(collider) and _jbossws_binds(collider)

    def test_deterministic_rebuild(self, java_catalog):
        again = build_java_catalog()
        assert [e.full_name for e in again] == [e.full_name for e in java_catalog]

    def test_throwables_have_message_property(self, java_catalog):
        for entry in java_catalog.with_trait(Trait.THROWABLE):
            assert any(p.name == "message" for p in entry.properties)


class TestDotNetCalibration:
    def test_total_population(self, dotnet_catalog):
        assert len(dotnet_catalog) == 14082

    def test_wcf_bindable_count(self, dotnet_catalog):
        assert sum(1 for e in dotnet_catalog if _wcf_binds(e)) == 2502

    def test_wsi_failing_population(self, dotnet_catalog):
        dsref = dotnet_catalog.with_trait(Trait.DATASET_SCHEMA_REF)
        lang = dotnet_catalog.with_trait(Trait.XML_LANG_ATTR)
        assert len(dsref) == 76
        assert len(lang) == 4
        assert all(_wcf_binds(e) for e in dsref + lang)

    def test_dataset_sub_quotas(self, dotnet_catalog):
        assert dotnet_catalog.count_with_trait(Trait.SCHEMA_KEYREF) == 13
        assert dotnet_catalog.count_with_trait(Trait.RECURSIVE_SCHEMA_REF) == 1
        assert dotnet_catalog.count_with_trait(Trait.SELF_WARN) == 1

    def test_dataset_sub_traits_disjoint(self, dotnet_catalog):
        special = (Trait.SCHEMA_KEYREF, Trait.RECURSIVE_SCHEMA_REF, Trait.SELF_WARN)
        for entry in dotnet_catalog.with_trait(Trait.DATASET_SCHEMA_REF):
            assert sum(entry.has_trait(t) for t in special) <= 1

    def test_script_unfriendly_counts(self, dotnet_catalog):
        script = dotnet_catalog.with_trait(Trait.SCRIPT_UNFRIENDLY)
        crashers = dotnet_catalog.with_trait(Trait.SCRIPT_CRASHER)
        assert len(script) == 301
        assert len(crashers) == 15
        assert all(e.has_trait(Trait.SCRIPT_UNFRIENDLY) for e in crashers)

    def test_named_specials_present(self, dotnet_catalog):
        assert dotnet_catalog.require("System.Data.DataSet").has_trait(
            Trait.ANY_CONTENT
        )
        table = dotnet_catalog.require("System.Data.DataTable")
        assert table.has_trait(Trait.MIXED_CONTENT)
        socket_error = dotnet_catalog.require("System.Net.Sockets.SocketError")
        assert socket_error.kind is TypeKind.ENUM
        assert socket_error.has_trait(Trait.CASE_COLLIDING_ENUM)

    def test_webcontrols_colliders(self, dotnet_catalog):
        colliders = dotnet_catalog.with_trait(Trait.CASE_COLLIDING_PROPERTIES)
        assert len(colliders) == 4
        assert all(e.namespace == "System.Web.UI.WebControls" for e in colliders)

    def test_socket_error_values_collide_case_insensitively(self, dotnet_catalog):
        socket_error = dotnet_catalog.require("System.Net.Sockets.SocketError")
        lowered = [v.lower() for v in socket_error.enum_values]
        assert len(lowered) != len(set(lowered))

    def test_deterministic_rebuild(self, dotnet_catalog):
        again = build_dotnet_catalog()
        assert [e.full_name for e in again] == [e.full_name for e in dotnet_catalog]


class TestQuickQuotas:
    def test_quick_java_catalog_builds(self, quick_java_catalog):
        assert len(quick_java_catalog) == QUICK_JAVA_QUOTAS.total
        assert (
            sum(1 for e in quick_java_catalog if _metro_binds(e))
            == QUICK_JAVA_QUOTAS.metro_bindable
        )

    def test_quick_dotnet_catalog_builds(self, quick_dotnet_catalog):
        assert len(quick_dotnet_catalog) == QUICK_DOTNET_QUOTAS.total
        assert (
            sum(1 for e in quick_dotnet_catalog if _wcf_binds(e))
            == QUICK_DOTNET_QUOTAS.wcf_bindable
        )

    def test_quick_catalogs_keep_named_specials(self, quick_java_catalog, quick_dotnet_catalog):
        assert "java.util.concurrent.Future" in quick_java_catalog
        assert "System.Data.DataSet" in quick_dotnet_catalog


class TestQuotaValidation:
    def test_java_jboss_exceeding_metro_rejected(self):
        with pytest.raises(ValueError):
            JavaCatalogQuotas(metro_bindable=100, jbossws_bindable=200).validate()

    def test_java_throwable_exceeding_bindables_rejected(self):
        with pytest.raises(ValueError):
            JavaCatalogQuotas(
                metro_bindable=100, jbossws_bindable=90, throwable_metro=200
            ).validate()

    def test_java_default_valid(self):
        JavaCatalogQuotas().validate()

    def test_dotnet_keyref_exceeding_pool_rejected(self):
        with pytest.raises(ValueError):
            DotNetCatalogQuotas(dataset_schema_ref=5, schema_keyref=10).validate()

    def test_dotnet_crashers_exceeding_script_pool_rejected(self):
        with pytest.raises(ValueError):
            DotNetCatalogQuotas(script_unfriendly=5, script_crasher=10).validate()

    def test_dotnet_default_valid(self):
        DotNetCatalogQuotas().validate()
