"""Invocation sweeps: determinism, taxonomy totality, quarantine, CLI."""

import json

import pytest

from repro.cli import main
from repro.core import CampaignConfig
from repro.core.store import CampaignCheckpoint, QuarantineRegistry
from repro.invoke import (
    INVOKE_QUARANTINE_KEY,
    InvocationCampaign,
    InvocationCampaignConfig,
    PayloadClass,
    invoke_result_from_obj,
    invoke_result_to_obj,
)
from repro.reporting import (
    render_fidelity_summary,
    render_gate_summary,
    render_invoke_matrix,
)
from repro.runtime.client import GeneratedClientProxy
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

_TAXONOMY_KEYS = (
    "lossless", "coerced", "corrupted", "fault", "client_reject",
    "quarantined",
)


def _base_config(**kwargs):
    return CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS,
        dotnet_quotas=QUICK_DOTNET_QUOTAS,
        **kwargs,
    )


def _tiny_iconfig(seed=7, **kwargs):
    defaults = dict(
        base=_base_config(client_ids=("suds", "metro", "gsoap")),
        seed=seed,
        sample_per_server=2,
        payloads_per_class=2,
    )
    defaults.update(kwargs)
    return InvocationCampaignConfig(**defaults)


class TestDeterminism:
    def test_same_seed_identical_matrices(self):
        first = InvocationCampaign(_tiny_iconfig()).run()
        second = InvocationCampaign(_tiny_iconfig()).run()
        assert invoke_result_to_obj(first) == invoke_result_to_obj(second)
        assert first.payloads_executed > 0

    def test_result_roundtrips_through_json(self):
        result = InvocationCampaign(_tiny_iconfig()).run()
        obj = json.loads(json.dumps(invoke_result_to_obj(result)))
        rebuilt = invoke_result_from_obj(obj)
        assert invoke_result_to_obj(rebuilt) == invoke_result_to_obj(result)

    def test_taxonomy_is_total(self):
        result = InvocationCampaign(_tiny_iconfig()).run()
        assert result.unclassified_total == 0
        totals = result.totals()
        assert totals["payloads"] == sum(
            totals[key] for key in _TAXONOMY_KEYS
        )
        for cell in result.cells.values():
            assert cell.payloads == sum(
                getattr(cell, key) for key in _TAXONOMY_KEYS
            )

    def test_shard_merge_matches_serial(self):
        config = _tiny_iconfig()
        serial = invoke_result_to_obj(InvocationCampaign(config).run())
        campaign = InvocationCampaign(config)
        job = campaign.shard_job()
        payloads = {
            unit.key: campaign.run_shard_unit(unit) for unit in job.units()
        }
        merged = invoke_result_to_obj(job.merge(payloads))
        assert merged == serial


class TestServiceFilter:
    def test_filter_narrows_the_sweep(self):
        everything = InvocationCampaign(_tiny_iconfig()).run()
        narrowed = InvocationCampaign(
            _tiny_iconfig(service_filter="Echojava*")
        ).run()
        assert 0 < narrowed.services_matched <= everything.services_matched

    def test_zero_match_filter_is_clean_and_empty(self):
        messages = []
        result = InvocationCampaign(
            _tiny_iconfig(service_filter="NoSuchService*")
        ).run(progress=messages.append)
        assert result.services_matched == 0
        assert result.payloads_executed == 0
        assert not result.cells
        assert any("matches filter" in message for message in messages)
        # Reporting renders the empty matrix instead of raising.
        assert "empty" in render_invoke_matrix(result)
        assert render_fidelity_summary(result)
        assert "empty sweep" in render_gate_summary(result)
        assert json.loads(json.dumps(invoke_result_to_obj(result)))

    def test_zero_match_cli_exits_zero(self, capsys):
        code = main([
            "invoke", "--quick", "--sample", "1",
            "--services", "NoSuchService*",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "nothing was invoked" in captured.err
        assert "empty" in captured.out


class TestQuarantine:
    def test_internal_bug_poisons_the_class_cell(self, monkeypatch):
        original = GeneratedClientProxy.invoke

        def buggy(self, operation_name, values, soap_headers=()):
            raise RuntimeError("planted harness bug")

        monkeypatch.setattr(GeneratedClientProxy, "invoke", buggy)
        result = InvocationCampaign(_tiny_iconfig()).run()
        monkeypatch.setattr(GeneratedClientProxy, "invoke", original)
        totals = result.totals()
        assert totals["unclassified"] > 0
        # The second payload of each class is skipped as quarantined.
        assert totals["quarantined"] > 0
        assert result.quarantine
        # Quarantine entries carry (client, payload class) granularity.
        assert all(":" in entry[2] for entry in result.quarantine)
        classes = {entry[2].split(":", 1)[1] for entry in result.quarantine}
        assert classes <= {cls.value for cls in PayloadClass}

    def test_quarantine_is_deterministic(self, monkeypatch):
        def buggy(self, operation_name, values, soap_headers=()):
            raise RuntimeError("planted harness bug")

        monkeypatch.setattr(GeneratedClientProxy, "invoke", buggy)
        first = InvocationCampaign(_tiny_iconfig()).run()
        second = InvocationCampaign(_tiny_iconfig()).run()
        assert invoke_result_to_obj(first) == invoke_result_to_obj(second)


class TestCheckpointResume:
    def test_interrupted_run_resumes_to_identical_result(self, tmp_path):
        uninterrupted = InvocationCampaign(_tiny_iconfig()).run()

        checkpoint = CampaignCheckpoint(str(tmp_path / "ckpt"))
        original = InvocationCampaign._invoke_one_server
        seen = []

        def dying(self, server_id, *args, **kwargs):
            seen.append(server_id)
            if len(seen) > 1:
                raise KeyboardInterrupt("simulated crash during server 2")
            return original(self, server_id, *args, **kwargs)

        InvocationCampaign._invoke_one_server = dying
        try:
            with pytest.raises(KeyboardInterrupt):
                InvocationCampaign(_tiny_iconfig()).run(checkpoint=checkpoint)
        finally:
            InvocationCampaign._invoke_one_server = original

        assert any(key.startswith("invoke-") for key in checkpoint.keys())
        resumed = InvocationCampaign(_tiny_iconfig()).run(
            checkpoint=checkpoint
        )
        assert invoke_result_to_obj(resumed) == invoke_result_to_obj(
            uninterrupted
        )

    def test_quarantine_survives_the_crash(self, tmp_path, monkeypatch):
        def buggy(self, operation_name, values, soap_headers=()):
            raise RuntimeError("planted harness bug")

        monkeypatch.setattr(GeneratedClientProxy, "invoke", buggy)
        checkpoint = CampaignCheckpoint(str(tmp_path / "ckpt"))
        original = InvocationCampaign._invoke_one_server
        seen = []

        def dying(self, server_id, *args, **kwargs):
            seen.append(server_id)
            if len(seen) > 1:
                raise KeyboardInterrupt("simulated crash during server 2")
            return original(self, server_id, *args, **kwargs)

        InvocationCampaign._invoke_one_server = dying
        try:
            with pytest.raises(KeyboardInterrupt):
                InvocationCampaign(_tiny_iconfig()).run(checkpoint=checkpoint)
        finally:
            InvocationCampaign._invoke_one_server = original

        assert len(
            QuarantineRegistry.load(checkpoint, key=INVOKE_QUARANTINE_KEY)
        ) > 0

    def test_changed_config_is_rejected(self, tmp_path):
        from repro.core.store import CheckpointMismatch

        checkpoint = CampaignCheckpoint(str(tmp_path))
        InvocationCampaign(_tiny_iconfig(seed=7)).run(checkpoint=checkpoint)
        with pytest.raises(CheckpointMismatch):
            InvocationCampaign(_tiny_iconfig(seed=8)).run(
                checkpoint=checkpoint
            )


class TestCli:
    def test_invoke_smoke_writes_json(self, tmp_path, capsys):
        out = tmp_path / "invoke.json"
        code = main([
            "invoke", "--quick", "--sample", "1", "--seed", "7",
            "--json", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "fidelity" in captured.out
        obj = json.loads(out.read_text())
        rebuilt = invoke_result_from_obj(obj)
        assert rebuilt.payloads_executed > 0
        assert rebuilt.unclassified_total == 0

    def test_unknown_class_exits_2(self, capsys):
        code = main(["invoke", "--quick", "--classes", "bogus-class"])
        assert code == 2
        assert "unknown payload class" in capsys.readouterr().err

    def test_class_filter_runs_subset(self, capsys):
        code = main([
            "invoke", "--quick", "--sample", "1",
            "--classes", "baseline,nil",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "numeric-boundary" not in out
