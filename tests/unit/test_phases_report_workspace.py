"""Unit tests for the phase API, WS-I XML reports and the workspace."""

import os

import pytest

from repro.appservers import GlassFish
from repro.core import CampaignConfig
from repro.core.phases import PreparationPhase, TestingPhase
from repro.frameworks.client import Axis1Client, MetroClient
from repro.services import ServiceDefinition
from repro.typesystem import (
    Language,
    Property,
    QUICK_DOTNET_QUOTAS,
    QUICK_JAVA_QUOTAS,
    TypeInfo,
)
from repro.wsdl import read_wsdl_text
from repro.wsi import check_document
from repro.wsi.report import parse_report_xml, render_report_xml
from repro.artifacts.workspace import write_bundle


@pytest.fixture(scope="module")
def quick_config():
    return CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
    )


class TestPreparationPhase:
    def test_selects_frameworks(self, quick_config):
        preparation = PreparationPhase(quick_config).run()
        assert len(preparation.servers) == 3
        assert len(preparation.clients) == 11

    def test_builds_corpora(self, quick_config):
        preparation = PreparationPhase(quick_config).run()
        assert len(preparation.corpora["metro"]) == QUICK_JAVA_QUOTAS.total
        assert len(preparation.corpora["wcf"]) == QUICK_DOTNET_QUOTAS.total
        assert preparation.services_created == (
            QUICK_JAVA_QUOTAS.total * 2 + QUICK_DOTNET_QUOTAS.total
        )

    def test_documentation_crawl_optional(self, quick_config):
        preparation = PreparationPhase(quick_config, crawl_documentation=True).run()
        assert len(preparation.harvested_names["java"]) == QUICK_JAVA_QUOTAS.total
        assert len(preparation.harvested_names["dotnet"]) == QUICK_DOTNET_QUOTAS.total

    def test_summary_mentions_counts(self, quick_config):
        preparation = PreparationPhase(quick_config).run()
        text = preparation.summary()
        assert "11 client" in text
        assert str(preparation.services_created) in text

    def test_server_subset(self):
        config = CampaignConfig(
            server_ids=("metro",),
            java_quotas=QUICK_JAVA_QUOTAS,
            dotnet_quotas=QUICK_DOTNET_QUOTAS,
        )
        preparation = PreparationPhase(config).run()
        assert set(preparation.corpora) == {"metro"}


class TestTestingPhase:
    def test_matches_campaign_results(self, quick_config, quick_campaign_result):
        preparation = PreparationPhase(quick_config).run()
        result = TestingPhase(preparation).run()
        assert result.totals() == quick_campaign_result.totals()
        for key, cell in result.cells.items():
            assert cell.as_row() == quick_campaign_result.cells[key].as_row()

    def test_progress_callback_invoked(self, quick_config):
        messages = []
        preparation = PreparationPhase(quick_config).run(progress=messages.append)
        TestingPhase(preparation).run(progress=messages.append)
        assert any("deployed" in message for message in messages)
        assert any("corpus" in message for message in messages)


class TestWsiXmlReport:
    def _report(self, type_name="java.text.SimpleDateFormat"):
        from repro.typesystem import build_java_catalog

        catalog = build_java_catalog(QUICK_JAVA_QUOTAS)
        record = GlassFish().deploy(ServiceDefinition(catalog.require(type_name)))
        return check_document(read_wsdl_text(record.wsdl_text))

    def test_roundtrip_failing_report(self):
        report = self._report()
        back = parse_report_xml(render_report_xml(report))
        assert back.subject == report.subject
        assert back.assertions_checked == report.assertions_checked
        assert len(back.failures) == len(report.failures)
        assert back.failures[0].assertion_id == report.failures[0].assertion_id
        assert back.failures[0].message == report.failures[0].message

    def test_passing_report_marked_passed(self):
        report = self._report("java.util.Date")
        text = render_report_xml(report)
        assert 'result="passed"' in text

    def test_failing_report_marked_failed(self):
        text = render_report_xml(self._report())
        assert 'result="failed"' in text

    def test_non_report_rejected(self):
        with pytest.raises(ValueError):
            parse_report_xml("<a/>")


class TestWorkspace:
    def _bundle(self, client=None):
        entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                         properties=(Property("size"),))
        record = GlassFish().deploy(ServiceDefinition(entry))
        document = read_wsdl_text(record.wsdl_text)
        client = client or MetroClient()
        return client.generate(document).bundle

    def test_writes_unit_files_and_manifest(self, tmp_path):
        bundle = self._bundle()
        written = write_bundle(bundle, str(tmp_path))
        assert any(path.endswith("Plain.java") for path in written)
        assert any(path.endswith("MANIFEST.txt") for path in written)
        manifest = next(p for p in written if p.endswith("MANIFEST.txt"))
        content = open(manifest).read()
        assert "partial: no" in content
        assert "units:" in content

    def test_source_files_contain_rendered_code(self, tmp_path):
        bundle = self._bundle()
        written = write_bundle(bundle, str(tmp_path))
        bean = next(p for p in written if p.endswith("Plain.java"))
        assert "public class Plain" in open(bean).read()

    def test_partial_bundle_flagged(self, tmp_path):
        from repro.typesystem import Trait

        entry = TypeInfo(
            Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
            traits=frozenset({Trait.WS_ADDRESSING_EPR}),
        )
        record = GlassFish().deploy(ServiceDefinition(entry))
        document = read_wsdl_text(record.wsdl_text)
        result = Axis1Client().generate(document)
        assert result.bundle.partial
        written = write_bundle(result.bundle, str(tmp_path))
        manifest = next(p for p in written if p.endswith("MANIFEST.txt"))
        assert "partial: yes" in open(manifest).read()

    def test_rejects_non_bundle(self, tmp_path):
        with pytest.raises(TypeError):
            write_bundle("nope", str(tmp_path))

    def test_layout_contains_tool_and_service(self, tmp_path):
        bundle = self._bundle()
        written = write_bundle(bundle, str(tmp_path))
        assert all(os.sep + "wsimport" + os.sep in path for path in written)
