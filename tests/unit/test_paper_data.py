"""Internal-consistency tests over the reconstructed paper numbers."""

from repro.data import (
    PAPER_FIG4,
    PAPER_HEADLINES,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    RECONSTRUCTION_NOTES,
)
from repro.data.paper_results import PAPER_FIG4_AS_PRINTED


class TestTableShapes:
    def test_table1_has_three_servers(self):
        assert len(PAPER_TABLE1) == 3

    def test_table2_has_eleven_rows(self):
        assert len(PAPER_TABLE2) == 11

    def test_table2_compile_flags(self):
        no_compile = [row[0] for row in PAPER_TABLE2 if not row[3]]
        assert no_compile == ["Zend Framework 1.9", "suds Python 0.4"]


class TestReconstructionConsistency:
    def test_fig4_is_sum_of_table3(self):
        for server_id, clients in PAPER_TABLE3.items():
            sums = [0, 0, 0, 0]
            for cells in clients.values():
                for index, value in enumerate(cells):
                    sums[index] += value or 0
            fig = PAPER_FIG4[server_id]
            assert sums == [
                fig["gen_warnings"],
                fig["gen_errors"],
                fig["comp_warnings"],
                fig["comp_errors"],
            ]

    def test_deployment_counts_sum(self):
        assert (
            PAPER_HEADLINES["deployed_metro"]
            + PAPER_HEADLINES["deployed_jbossws"]
            + PAPER_HEADLINES["deployed_wcf"]
            == PAPER_HEADLINES["services_deployed"]
        )

    def test_tests_equal_deployed_times_clients(self):
        assert (
            PAPER_HEADLINES["services_deployed"] * 11 == PAPER_HEADLINES["tests"]
        )

    def test_created_minus_refused_equals_deployed(self):
        assert (
            PAPER_HEADLINES["services_created"]
            - PAPER_HEADLINES["services_refused"]
            == PAPER_HEADLINES["services_deployed"]
        )

    def test_sdg_warnings_sum(self):
        assert (
            sum(fig["sdg_warnings"] for fig in PAPER_FIG4.values())
            == PAPER_HEADLINES["sdg_warnings"]
        )

    def test_comp_totals_sum(self):
        assert (
            sum(fig["comp_warnings"] for fig in PAPER_FIG4.values())
            == PAPER_HEADLINES["comp_warning_tests"]
        )
        assert (
            sum(fig["comp_errors"] for fig in PAPER_FIG4.values())
            == PAPER_HEADLINES["comp_error_tests"]
        )

    def test_axis1_throwable_total(self):
        assert (
            PAPER_TABLE3["metro"]["axis1"][3] + PAPER_TABLE3["jbossws"]["axis1"][3]
            == PAPER_HEADLINES["axis1_throwable_comp_errors"]
        )

    def test_same_framework_total(self):
        own = (
            PAPER_TABLE3["metro"]["metro"][1]
            + PAPER_TABLE3["jbossws"]["jbossws"][1]
            + sum(
                (PAPER_TABLE3["wcf"][cid][1] or 0)
                + (PAPER_TABLE3["wcf"][cid][3] or 0)
                for cid in ("dotnet-cs", "dotnet-vb", "dotnet-js")
            )
        )
        assert own == PAPER_HEADLINES["same_framework_error_tests"]

    def test_printed_fig4_divergences_documented(self):
        assert PAPER_FIG4_AS_PRINTED["jbossws"]["gen_warnings"] == 2255
        assert PAPER_FIG4_AS_PRINTED["wcf"]["gen_errors"] == 256
        assert "2255" in RECONSTRUCTION_NOTES
        assert "1583" in RECONSTRUCTION_NOTES
