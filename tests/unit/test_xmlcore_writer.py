"""Unit tests for the XML serializer."""

import pytest

from repro.xmlcore import Element, QName, XmlWriteError, parse, serialize
from repro.xmlcore.writer import escape_attribute, escape_text


class TestEscaping:
    def test_text_escapes_markup(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quote(self):
        assert escape_attribute('say "hi" & go') == "say &quot;hi&quot; &amp; go"

    def test_text_keeps_quotes(self):
        assert escape_text('"') == '"'


class TestSerialize:
    def test_declaration_present_by_default(self):
        text = serialize(Element(QName("a")))
        assert text.startswith('<?xml version="1.0" encoding="UTF-8"?>')

    def test_declaration_can_be_suppressed(self):
        text = serialize(Element(QName("a")), xml_declaration=False)
        assert text.strip() == "<a/>"

    def test_empty_element_self_closes(self):
        assert "<a/>" in serialize(Element(QName("a")))

    def test_prefix_hint_honoured(self):
        root = Element(QName("urn:x", "doc"), prefix_hint="d")
        text = serialize(root)
        assert '<d:doc xmlns:d="urn:x"/>' in text

    def test_prefix_generated_when_no_hint(self):
        text = serialize(Element(QName("urn:x", "doc")))
        assert 'xmlns:ns0="urn:x"' in text

    def test_colliding_hints_get_fresh_prefix(self):
        root = Element(QName("urn:x", "doc"), prefix_hint="p")
        root.add_child(Element(QName("urn:y", "item"), prefix_hint="p"))
        reparsed = parse(serialize(root))
        assert reparsed.children[0].name == QName("urn:y", "item")

    def test_namespaced_attribute_gets_prefix(self):
        root = Element(QName("a"))
        root.set(QName("urn:n", "k"), "v")
        text = serialize(root)
        assert 'ns0:k="v"' in text and 'xmlns:ns0="urn:n"' in text

    def test_explicit_xmlns_declaration_reused(self):
        root = Element(QName("urn:x", "doc"), prefix_hint="x")
        root.set(QName("xmlns:x"), "urn:x")
        text = serialize(root, xml_declaration=False)
        assert text.count("urn:x") == 1  # declared once, not twice

    def test_explicit_declaration_supports_attr_values(self):
        root = Element(QName("a"))
        root.set(QName("xmlns:t"), "urn:t")
        root.set(QName("type"), "t:thing")
        reparsed = parse(serialize(root))
        assert reparsed.resolve_qname_value("t:thing") == QName("urn:t", "thing")

    def test_text_content_escaped(self):
        root = Element(QName("a"), text="1 < 2 & 3")
        assert "1 &lt; 2 &amp; 3" in serialize(root)

    def test_pretty_indents_children(self):
        root = Element(QName("a"))
        root.add_child(Element(QName("b")))
        text = serialize(root, pretty=True)
        assert "\n  <b/>" in text

    def test_compact_has_no_newlines_between_children(self):
        root = Element(QName("a"))
        root.add_child(Element(QName("b")))
        text = serialize(root, pretty=False, xml_declaration=False)
        assert text == "<a><b/></a>"

    def test_mixed_content_not_indented(self):
        root = Element(QName("a"))
        root.add_text("hello ")
        root.add_child(Element(QName("b")))
        text = serialize(root, pretty=True, xml_declaration=False)
        assert "hello <b/>" in text

    def test_invalid_name_rejected(self):
        with pytest.raises(XmlWriteError):
            serialize(Element(QName("1bad")))

    def test_non_element_rejected(self):
        with pytest.raises(XmlWriteError):
            serialize("not an element")

    def test_xml_prefix_reserved_for_xml_namespace(self):
        root = Element(QName("a"))
        root.set(QName("http://www.w3.org/XML/1998/namespace", "lang"), "en")
        assert 'xml:lang="en"' in serialize(root)
