"""Unit tests for the type-system model, naming and catalog container."""

import random

import pytest

from repro.typesystem import (
    Catalog,
    CtorVisibility,
    Language,
    Property,
    SimpleType,
    Trait,
    TypeInfo,
    TypeKind,
)
from repro.typesystem.model import (
    properties_with_case_collision,
    script_unfriendly_properties,
)
from repro.typesystem.naming import (
    DOTNET_NAMESPACES,
    JAVA_PACKAGES,
    NameFactory,
)
from repro.typesystem.synthesis import (
    ENUM_VALUE_NAMES,
    PROPERTY_NAMES,
    synth_enum_values,
    synth_properties,
)


class TestTypeInfo:
    def test_full_name(self):
        info = TypeInfo(Language.JAVA, "java.util", "Date")
        assert info.full_name == "java.util.Date"

    def test_has_trait(self):
        info = TypeInfo(
            Language.JAVA, "java.lang", "Exception",
            traits=frozenset({Trait.THROWABLE}),
        )
        assert info.has_trait(Trait.THROWABLE)
        assert not info.has_trait(Trait.ASYNC_HANDLE)

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (TypeKind.CLASS, True),
            (TypeKind.ENUM, True),
            (TypeKind.STRUCT, True),
            (TypeKind.INTERFACE, False),
            (TypeKind.ABSTRACT_CLASS, False),
            (TypeKind.DELEGATE, False),
            (TypeKind.ANNOTATION, False),
        ],
    )
    def test_concrete_class_kinds(self, kind, expected):
        info = TypeInfo(Language.JAVA, "p", "T", kind=kind)
        assert info.is_concrete_class is expected

    def test_case_collision_shape(self):
        names = [prop.name for prop in properties_with_case_collision()]
        assert "value" in names and "Value" in names

    def test_script_unfriendly_shape_scales_with_depth(self):
        props = script_unfriendly_properties(depth=3)
        nillable = [p for p in props if p.nillable_value and p.is_array]
        assert len(nillable) == 3
        assert all(p.value_type is SimpleType.INT for p in nillable)


class TestNameFactory:
    def test_unique_names(self):
        factory = NameFactory(JAVA_PACKAGES, random.Random(1))
        seen = set()
        for __ in range(2000):
            namespace, name = factory.next_class_name()
            assert (namespace, name) not in seen
            seen.add((namespace, name))

    def test_reserved_names_never_produced(self):
        factory = NameFactory(JAVA_PACKAGES, random.Random(2))
        factory.reserve("java.util", "Date")
        for __ in range(500):
            namespace, name = factory.next_class_name("java.util")
            assert name != "Date"

    def test_throwable_names_end_properly(self):
        factory = NameFactory(JAVA_PACKAGES, random.Random(3))
        for __ in range(50):
            __, name = factory.next_throwable_name()
            assert name.endswith(("Exception", "Error"))

    def test_deterministic_given_seed(self):
        a = NameFactory(DOTNET_NAMESPACES, random.Random(7))
        b = NameFactory(DOTNET_NAMESPACES, random.Random(7))
        assert [a.next_class_name() for __ in range(20)] == [
            b.next_class_name() for __ in range(20)
        ]


class TestSynthesis:
    def test_property_names_distinct(self):
        rng = random.Random(5)
        for __ in range(100):
            props = synth_properties(rng)
            names = [p.name for p in props]
            assert len(names) == len(set(names))

    def test_property_name_pool_has_no_case_collisions(self):
        lowered = [name.lower() for name in PROPERTY_NAMES]
        assert len(lowered) == len(set(lowered))

    def test_enum_value_pool_has_no_case_collisions(self):
        lowered = [name.lower() for name in ENUM_VALUE_NAMES]
        assert len(lowered) == len(set(lowered))

    def test_enum_values_distinct(self):
        rng = random.Random(6)
        values = synth_enum_values(rng)
        assert len(values) == len(set(values))


def _entry(name="T", namespace="p", language=Language.JAVA, **kwargs):
    return TypeInfo(language, namespace, name, **kwargs)


class TestCatalog:
    def test_len_iter_contains(self):
        catalog = Catalog(Language.JAVA, [_entry("A"), _entry("B")])
        assert len(catalog) == 2
        assert {e.name for e in catalog} == {"A", "B"}
        assert "p.A" in catalog

    def test_get_and_require(self):
        catalog = Catalog(Language.JAVA, [_entry("A")])
        assert catalog.get("p.A").name == "A"
        assert catalog.get("p.X") is None
        with pytest.raises(KeyError):
            catalog.require("p.X")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Catalog(Language.JAVA, [_entry("A"), _entry("A")])

    def test_language_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Catalog(Language.JAVA, [_entry("A", language=Language.CSHARP)])

    def test_non_typeinfo_rejected(self):
        with pytest.raises(TypeError):
            Catalog(Language.JAVA, ["nope"])

    def test_with_trait(self):
        entries = [
            _entry("A", traits=frozenset({Trait.THROWABLE})),
            _entry("B"),
        ]
        catalog = Catalog(Language.JAVA, entries)
        assert [e.name for e in catalog.with_trait(Trait.THROWABLE)] == ["A"]
        assert catalog.count_with_trait(Trait.THROWABLE) == 1

    def test_kinds_counter(self):
        catalog = Catalog(
            Language.JAVA,
            [_entry("A"), _entry("B", kind=TypeKind.INTERFACE, ctor=CtorVisibility.NONE)],
        )
        assert catalog.kinds()[TypeKind.CLASS] == 1
        assert catalog.kinds()[TypeKind.INTERFACE] == 1

    def test_summary_mentions_size(self):
        catalog = Catalog(Language.JAVA, [_entry("A")])
        assert "1 types" in catalog.summary()


class TestPropertyDefaults:
    def test_defaults(self):
        prop = Property("size")
        assert prop.value_type is SimpleType.STRING
        assert not prop.is_array
        assert not prop.nillable_value
