"""Resilience sweeps: determinism, checkpoint/resume, crash-safe store."""

import json
import os

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.store import (
    CampaignCheckpoint,
    load_result,
    result_to_obj,
    save_result,
)
from repro.faults import (
    FaultKind,
    ResilienceCampaign,
    ResilienceCampaignConfig,
    resilience_result_from_obj,
    resilience_result_to_obj,
)
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS


def _base_config(**kwargs):
    return CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS,
        dotnet_quotas=QUICK_DOTNET_QUOTAS,
        **kwargs,
    )


def _tiny_rconfig(seed=99):
    return ResilienceCampaignConfig(
        base=_base_config(client_ids=("suds", "metro", "gsoap")),
        seed=seed,
        fault_kinds=(FaultKind.HTTP_503, FaultKind.CONNECTION_REFUSED),
        rates=(0.4,),
        sample_per_server=3,
    )


class TestDeterminism:
    def test_same_seed_identical_matrices(self):
        first = ResilienceCampaign(_tiny_rconfig()).run()
        second = ResilienceCampaign(_tiny_rconfig()).run()
        assert resilience_result_to_obj(first) == resilience_result_to_obj(
            second
        )
        assert first.tests_executed > 0

    def test_different_seed_changes_outcomes(self):
        first = ResilienceCampaign(_tiny_rconfig(seed=1)).run()
        second = ResilienceCampaign(_tiny_rconfig(seed=2)).run()
        assert resilience_result_to_obj(first) != resilience_result_to_obj(
            second
        )

    def test_result_roundtrips_through_json(self):
        result = ResilienceCampaign(_tiny_rconfig()).run()
        obj = json.loads(json.dumps(resilience_result_to_obj(result)))
        rebuilt = resilience_result_from_obj(obj)
        assert resilience_result_to_obj(rebuilt) == resilience_result_to_obj(
            result
        )

    def test_faults_reduce_survival(self):
        quiet = _tiny_rconfig()
        quiet.rates = (0.0,)
        stormy = _tiny_rconfig()
        stormy.rates = (0.9,)
        calm = ResilienceCampaign(quiet).run()
        chaos = ResilienceCampaign(stormy).run()
        assert chaos.totals()["completed"] < calm.totals()["completed"]
        assert calm.totals()["faults_injected"] == 0

    def test_retrying_clients_survive_better_under_503(self):
        config = ResilienceCampaignConfig(
            base=_base_config(client_ids=("metro", "suds")),
            seed=5,
            fault_kinds=(FaultKind.HTTP_503,),
            rates=(0.5,),
            sample_per_server=6,
        )
        result = ResilienceCampaign(config).run()
        survival = result.client_survival(FaultKind.HTTP_503.value, 0.5)
        assert survival["metro"] > survival["suds"]
        assert result.totals()["recovered"] > 0


class TestResilienceCheckpointResume:
    def test_interrupted_run_resumes_to_identical_result(self, tmp_path):
        uninterrupted = ResilienceCampaign(_tiny_rconfig()).run()

        checkpoint = CampaignCheckpoint(str(tmp_path / "ckpt"))
        campaign = ResilienceCampaign(_tiny_rconfig())
        original = ResilienceCampaign._run_cell
        calls = {"servers_seen": set()}

        def dying(self, cell, server_id, *args, **kwargs):
            calls["servers_seen"].add(server_id)
            if len(calls["servers_seen"]) > 1:
                raise KeyboardInterrupt("simulated crash during server 2")
            return original(self, cell, server_id, *args, **kwargs)

        ResilienceCampaign._run_cell = dying
        try:
            with pytest.raises(KeyboardInterrupt):
                campaign.run(checkpoint=checkpoint)
        finally:
            ResilienceCampaign._run_cell = original

        # Server 1 is checkpointed; servers 2-3 are not.
        assert any(key.startswith("resilience-") for key in checkpoint.keys())

        resumed = ResilienceCampaign(_tiny_rconfig()).run(
            checkpoint=checkpoint
        )
        assert resilience_result_to_obj(resumed) == resilience_result_to_obj(
            uninterrupted
        )

    def test_checkpoint_rejects_different_campaign(self, tmp_path):
        checkpoint = CampaignCheckpoint(str(tmp_path))
        ResilienceCampaign(_tiny_rconfig(seed=1)).run(checkpoint=checkpoint)
        with pytest.raises(ValueError, match="different campaign"):
            ResilienceCampaign(_tiny_rconfig(seed=2)).run(
                checkpoint=checkpoint
            )


class TestCampaignCheckpointResume:
    def _config(self):
        return _base_config(client_ids=("suds", "zend"))

    def test_resume_is_byte_identical_to_uninterrupted(self, tmp_path):
        uninterrupted = Campaign(self._config()).run()
        plain_path = str(tmp_path / "plain.json")
        save_result(uninterrupted, plain_path)

        checkpoint = CampaignCheckpoint(str(tmp_path / "ckpt"))
        original = Campaign._run_one_server
        seen = []

        def dying(self, server_id, *args, **kwargs):
            seen.append(server_id)
            if len(seen) > 1:
                raise KeyboardInterrupt("simulated crash during server 2")
            return original(self, server_id, *args, **kwargs)

        Campaign._run_one_server = dying
        try:
            with pytest.raises(KeyboardInterrupt):
                Campaign(self._config()).run(checkpoint=checkpoint)
        finally:
            Campaign._run_one_server = original

        resumed = Campaign(self._config()).run(checkpoint=checkpoint)
        resumed_path = str(tmp_path / "resumed.json")
        save_result(resumed, resumed_path)
        with open(plain_path, "rb") as a, open(resumed_path, "rb") as b:
            assert a.read() == b.read()

    def test_fully_checkpointed_run_reloads_without_rerun(self, tmp_path):
        checkpoint = CampaignCheckpoint(str(tmp_path))
        first = Campaign(self._config()).run(checkpoint=checkpoint)

        def exploding(self, *args, **kwargs):
            raise AssertionError("should not re-run any server")

        original = Campaign._run_one_server
        Campaign._run_one_server = exploding
        try:
            second = Campaign(self._config()).run(checkpoint=checkpoint)
        finally:
            Campaign._run_one_server = original
        assert result_to_obj(first) == result_to_obj(second)
        # Wall times come from the checkpoint, not from a re-run.
        assert second.meta["wall_seconds"] == first.meta["wall_seconds"]


class TestAtomicStore:
    def test_save_and_load_roundtrip(self, tmp_path):
        result = Campaign(_base_config(client_ids=("suds",))).run()
        path = str(tmp_path / "result.json")
        save_result(result, path)
        assert result_to_obj(load_result(path)) == result_to_obj(result)
        # No temp droppings left behind.
        assert os.listdir(str(tmp_path)) == ["result.json"]

    def test_failed_save_preserves_existing_file(self, tmp_path):
        result = Campaign(_base_config(client_ids=("suds",))).run()
        path = str(tmp_path / "result.json")
        save_result(result, path)
        before = open(path, "rb").read()

        # Sets are not JSON-serializable: the dump dies mid-write.
        broken = result_to_obj(result)
        broken["servers"] = {"oops": {"bad": {1, 2, 3}}}
        from repro.core.store import write_json_atomic

        with pytest.raises(TypeError):
            write_json_atomic(broken, path)
        assert open(path, "rb").read() == before
        assert os.listdir(str(tmp_path)) == ["result.json"]


class TestFlagOverrideRestoration:
    def test_overrides_do_not_leak_into_shared_instances(self, monkeypatch):
        from repro.core import campaign as campaign_module
        from repro.frameworks.registry import all_client_frameworks

        shared = all_client_frameworks()
        monkeypatch.setattr(
            campaign_module, "all_client_frameworks", lambda: shared
        )
        axis1 = shared["axis1"]
        assert axis1.throwable_wrapper_bug is True

        config = _base_config(
            client_ids=("axis1",),
            server_ids=("metro",),
            client_flag_overrides={"axis1": {"throwable_wrapper_bug": False}},
        )
        Campaign(config).run()
        # The shared instance is back to its documented behaviour.
        assert axis1.throwable_wrapper_bug is True

    def test_overrides_restored_even_when_run_crashes(self, monkeypatch):
        from repro.core import campaign as campaign_module
        from repro.frameworks.registry import all_client_frameworks

        shared = all_client_frameworks()
        monkeypatch.setattr(
            campaign_module, "all_client_frameworks", lambda: shared
        )
        monkeypatch.setattr(
            Campaign,
            "_run_one_server",
            lambda self, *args, **kwargs: (_ for _ in ()).throw(
                RuntimeError("boom")
            ),
        )
        config = _base_config(
            client_ids=("axis1",),
            server_ids=("metro",),
            client_flag_overrides={"axis1": {"throwable_wrapper_bug": False}},
        )
        with pytest.raises(RuntimeError):
            Campaign(config).run()
        assert shared["axis1"].throwable_wrapper_bug is True

    def test_unknown_flag_still_rejected(self):
        config = _base_config(
            client_ids=("axis1",),
            server_ids=("metro",),
            client_flag_overrides={"axis1": {"not_a_flag": True}},
        )
        with pytest.raises(AttributeError, match="not_a_flag"):
            Campaign(config).run()
