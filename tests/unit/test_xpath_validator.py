"""Unit tests for the XPath-lite selector and the WSDL validator."""

import pytest

from repro.appservers import GlassFish
from repro.services import ServiceDefinition
from repro.typesystem import Language, Property, TypeInfo
from repro.wsdl import read_wsdl_text
from repro.wsdl.validator import is_structurally_valid, validate_wsdl
from repro.xmlcore import WSDL_NS, parse
from repro.xmlcore.xpath import XPathError, select, select_one

_DOC = """
<catalog xmlns:m="urn:media">
  <m:book id="1" lang="en"><title>Alpha</title></m:book>
  <m:book id="2"><title>Beta</title><title>Gamma</title></m:book>
  <m:disc id="3" lang="fr"><title>Delta</title></m:disc>
  <shelf><m:book id="4"><title>Epsilon</title></m:book></shelf>
</catalog>
"""

NS = {"m": "urn:media"}


@pytest.fixture()
def root():
    return parse(_DOC)


class TestSelect:
    def test_child_steps(self, root):
        books = select(root, "m:book", NS)
        assert [b.get("id") for b in books] == ["1", "2"]

    def test_nested_path(self, root):
        titles = select(root, "m:book/title/text()", NS)
        assert titles == ["Alpha", "Beta", "Gamma"]

    def test_descendant_step(self, root):
        books = select(root, "//m:book", NS)
        assert [b.get("id") for b in books] == ["1", "2", "4"]

    def test_wildcard(self, root):
        children = select(root, "*")
        assert len(children) == 4

    def test_attribute_terminal(self, root):
        assert select(root, "m:book/@id", NS) == ["1", "2"]

    def test_attribute_missing_skipped(self, root):
        assert select(root, "m:book/@lang", NS) == ["en"]

    def test_position_predicate(self, root):
        assert select_one(root, "m:book[2]/@id", NS) == "2"

    def test_attribute_presence_predicate(self, root):
        assert select_one(root, "m:disc[@lang]/@id", NS) == "3"

    def test_attribute_value_predicate(self, root):
        assert select(root, "m:book[@id='2']/title/text()", NS) == ["Beta", "Gamma"]

    def test_descendant_with_predicate(self, root):
        assert select_one(root, "//m:book[@id='4']/title/text()", NS) == "Epsilon"

    def test_select_one_default(self, root):
        assert select_one(root, "m:book[@id='99']", NS, default="none") == "none"

    def test_text_on_root(self, root):
        assert select(root, "shelf//title/text()") == ["Epsilon"]

    def test_unbound_prefix_rejected(self, root):
        with pytest.raises(XPathError):
            select(root, "x:book")

    @pytest.mark.parametrize("bad", ["", "/", "a//", "a/[1]", "a[0]", "a[@@]"])
    def test_malformed_paths_rejected(self, root, bad):
        with pytest.raises(XPathError):
            select(root, bad)

    def test_non_element_rejected(self):
        with pytest.raises(TypeError):
            select("nope", "a")

    def test_works_on_real_wsdl(self):
        entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                         properties=(Property("size"),))
        record = GlassFish().deploy(ServiceDefinition(entry))
        root = parse(record.wsdl_text)
        ns = {"wsdl": WSDL_NS}
        ops = select(root, "wsdl:portType/wsdl:operation/@name", ns)
        assert ops == ["echoPlain"]
        location = select_one(
            root, "wsdl:service/wsdl:port/*[1]/@location", ns
        )
        assert location == record.endpoint_url


class TestWsdlValidator:
    def _document(self):
        entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                         properties=(Property("size"),))
        record = GlassFish().deploy(ServiceDefinition(entry))
        return read_wsdl_text(record.wsdl_text)

    def test_emitted_documents_are_valid(self):
        document = self._document()
        assert is_structurally_valid(document)

    def test_duplicate_message_detected(self):
        document = self._document()
        document.messages.append(document.messages[0])
        codes = {issue.code for issue in validate_wsdl(document)}
        assert "duplicate-message" in codes

    def test_duplicate_operation_detected(self):
        document = self._document()
        document.operations.append(document.operations[0])
        codes = {issue.code for issue in validate_wsdl(document)}
        assert "duplicate-operation" in codes

    def test_dangling_message_reference_detected(self):
        document = self._document()
        document.messages = document.messages[:1]
        codes = {issue.code for issue in validate_wsdl(document)}
        assert "dangling-message-ref" in codes

    def test_dangling_part_element_detected(self):
        document = self._document()
        document.schemas[0].elements = []
        codes = {issue.code for issue in validate_wsdl(document)}
        assert "dangling-part-element" in codes

    def test_missing_transport_detected(self):
        from repro.wsdl.model import SoapBindingInfo

        document = self._document()
        document.binding = SoapBindingInfo(transport="")
        codes = {issue.code for issue in validate_wsdl(document)}
        assert "no-soap-binding" in codes

    def test_empty_port_type_is_structurally_fine(self):
        """The JBossWS zero-operation WSDL is *valid* WSDL — that is the
        paper's §IV.A complaint about the schema's minOccurs=0."""
        document = self._document()
        document.operations = []
        document.messages = []
        document.schemas[0].elements = []
        assert is_structurally_valid(document)

    def test_all_campaign_wsdls_are_valid(self, quick_java_catalog):
        from repro.services import generate_corpus

        server = GlassFish()
        server.deploy_corpus(generate_corpus(quick_java_catalog))
        for record in server.deployed:
            assert is_structurally_valid(read_wsdl_text(record.wsdl_text))
