"""Unit tests for the transport recorder and result diffing."""

import pytest

from repro.appservers import GlassFish
from repro.regress.diff import diff_results, diff_totals, results_equivalent
from repro.core.outcomes import ClientTestRecord, classify
from repro.core.results import CampaignResult, ServerRunReport
from repro.frameworks.client import SudsClient
from repro.runtime import (
    EchoServiceEndpoint,
    GeneratedClientProxy,
    InMemoryHttpTransport,
)
from repro.runtime.recorder import TransportRecorder, check_exchange
from repro.services import ServiceDefinition
from repro.typesystem import Language, Property, TypeInfo
from repro.wsdl import read_wsdl_text


def _recorded_roundtrip():
    entry = TypeInfo(Language.JAVA, "pkg", "Plain",
                     properties=(Property("size"),))
    record = GlassFish().deploy(ServiceDefinition(entry))
    recorder = TransportRecorder(InMemoryHttpTransport())
    EchoServiceEndpoint(record).mount(recorder)
    document = read_wsdl_text(record.wsdl_text)
    client = SudsClient()
    proxy = GeneratedClientProxy(client.generate(document).bundle, document, recorder)
    proxy.invoke("echoPlain", {"size": "9"})
    return recorder


class TestRecorder:
    def test_exchange_captured(self):
        recorder = _recorded_roundtrip()
        assert len(recorder.exchanges) == 1
        exchange = recorder.exchanges[0]
        assert exchange.ok
        assert "echoPlain" in exchange.request_body
        assert "echoPlainResponse" in exchange.response_body

    def test_requests_sent_delegates(self):
        recorder = _recorded_roundtrip()
        assert recorder.requests_sent == 1

    def test_conformant_exchange_passes_check(self):
        recorder = _recorded_roundtrip()
        assert check_exchange(recorder.exchanges[0]) == []

    def test_check_flags_non_soap_request(self):
        from repro.runtime.recorder import Exchange

        problems = check_exchange(
            Exchange("http://x", "not xml", 200, "<also-bad/>")
        )
        assert "request is not a SOAP envelope" in problems[0]

    def test_check_flags_mismatched_response(self):
        from repro.runtime.recorder import Exchange
        from repro.soap.envelope import serialize_envelope
        from repro.xmlcore import Element, QName

        request = serialize_envelope(body_element=Element(QName("urn:a", "ping")))
        response = serialize_envelope(body_element=Element(QName("urn:a", "wrong")))
        problems = check_exchange(Exchange("http://x", request, 200, response))
        assert any("does not match" in p for p in problems)

    def test_fault_is_conformant_answer(self):
        from repro.runtime.recorder import Exchange
        from repro.soap.envelope import SoapFault, serialize_envelope
        from repro.xmlcore import Element, QName

        request = serialize_envelope(body_element=Element(QName("urn:a", "ping")))
        response = serialize_envelope(fault=SoapFault("soapenv:Client", "nope"))
        assert check_exchange(Exchange("http://x", request, 500, response)) == []


def _result_with(cells):
    result = CampaignResult(server_ids=("s",), client_ids=("a", "b"))
    result.servers["s"] = ServerRunReport(server_id="s", services_total=2, deployed=2)
    for client_id, gen_err in cells.items():
        record = ClientTestRecord(
            server_id="s", client_id=client_id, service_name="Svc",
            generation=classify(gen_err, 0), compilation=classify(0, 0),
        )
        result.add_record(record)
    return result


class TestDiffing:
    def test_identical_results_equivalent(self):
        before = _result_with({"a": 0, "b": 1})
        after = _result_with({"a": 0, "b": 1})
        assert results_equivalent(before, after)
        assert diff_results(before, after) == []

    def test_changed_cell_detected(self):
        before = _result_with({"a": 0, "b": 1})
        after = _result_with({"a": 1, "b": 1})
        diffs = diff_results(before, after)
        assert len(diffs) == 1
        diff = diffs[0]
        assert (diff.server_id, diff.client_id) == ("s", "a")
        assert diff.metric == "gen_errors"
        assert diff.delta == 1
        assert "->" in str(diff)

    def test_totals_diff(self):
        before = _result_with({"a": 0, "b": 0})
        after = _result_with({"a": 1, "b": 0})
        moved = diff_totals(before, after)
        assert moved["gen_error_tests"] == (0, 1)
        assert moved["error_situations"] == (0, 1)

    def test_full_reruns_are_equivalent(self, quick_campaign_result):
        from repro.core import Campaign, CampaignConfig
        from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

        again = Campaign(
            CampaignConfig(
                java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
            )
        ).run()
        assert results_equivalent(quick_campaign_result, again)
