"""Unit coverage of the observability layer.

Span identity must be a pure function of logical coordinates, metrics
must merge to the same counts in any order, the sink must reject
malformed traces, and the collector must reassemble per-unit streams
into the serial emission order.
"""

import json

import pytest

from repro.core.store import write_json_atomic
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    TraceSink,
    TraceValidationError,
    Tracer,
    activate,
    current_tracer,
    load_trace,
    root_span_id,
    server_span_id,
    span_id_for,
    trace_id_for,
    validate_trace_lines,
)
from repro.obs.sink import TRACE_SCHEMA
from repro.runtime.recorder import TransportRecorder


class TestSpanIdentity:
    def test_trace_id_excludes_nothing_but_campaign_and_config(self):
        assert trace_id_for("run", "abc") == trace_id_for("run", "abc")
        assert trace_id_for("run", "abc") != trace_id_for("fuzz", "abc")
        assert trace_id_for("run", "abc") != trace_id_for("run", "abd")

    def test_span_id_is_pure_function_of_coordinates(self):
        first = span_id_for("p", "test", {"client": "axis2", "server": "metro"})
        second = span_id_for("p", "test", {"server": "metro", "client": "axis2"})
        assert first == second  # attr order must not matter
        assert first != span_id_for("q", "test", {"client": "axis2"})
        assert first != span_id_for("p", "cell", {"client": "axis2"})

    def test_server_span_id_computable_without_executing(self):
        trace_id = trace_id_for("run", "cfg")
        tracer = Tracer(trace_id)
        with tracer.span("server", server="metro") as span:
            observed = span.span_id
        assert observed == server_span_id(trace_id, "metro")

    def test_durations_never_enter_the_id(self):
        tracer = Tracer("t")
        with tracer.span("test", client="cxf") as span:
            span.annotate(bucket="clean", ms_ish=123.4)
        event = tracer.events[0]
        assert event["id"] == span_id_for(
            root_span_id("t"), "test", {"client": "cxf"}
        )
        assert event["notes"] == {"bucket": "clean", "ms_ish": 123.4}


class TestTracer:
    def test_events_emitted_in_post_order_with_parent_edges(self):
        tracer = Tracer("t")
        with tracer.span("server", server="metro") as server:
            with tracer.span("service", service="EchoA") as service:
                with tracer.span("wsdl-read"):
                    pass
        names = [event["name"] for event in tracer.events]
        assert names == ["wsdl-read", "service", "server"]
        by_name = {event["name"]: event for event in tracer.events}
        assert by_name["wsdl-read"]["parent"] == service.span_id
        assert by_name["service"]["parent"] == server.span_id
        assert by_name["server"]["parent"] == root_span_id("t")

    def test_virtual_span_positions_children_but_never_emits(self):
        tracer = Tracer("t")
        with tracer.virtual_span("server", server="metro") as virtual:
            with tracer.span("service", service="EchoA"):
                pass
        names = [event["name"] for event in tracer.events]
        assert names == ["service"]
        assert tracer.events[0]["parent"] == virtual.span_id
        assert virtual.span_id == server_span_id("t", "metro")

    def test_emit_root_closes_the_trace(self):
        tracer = Tracer("t")
        with tracer.span("server", server="metro"):
            pass
        tracer.emit_root(finished=True)
        root = tracer.events[-1]
        assert root["name"] == "campaign"
        assert root["id"] == root_span_id("t")
        assert root["parent"] == ""
        assert root["notes"] == {"finished": True}

    def test_metrics_fed_per_step_and_per_pair(self):
        tracer = Tracer("t")
        with tracer.span("server", server="metro"):
            with tracer.span("test", client="cxf") as span:
                span.annotate(bucket="clean")
        metrics = tracer.metrics
        tracer.flush()
        assert metrics.counter_value("spans_total", name="test") == 1
        assert metrics.histogram_for("span_ms", name="test").count == 1
        assert metrics.histogram_for(
            "pair_ms", server="metro", client="cxf"
        ).count == 1
        assert metrics.counter_value("triage_total", bucket="clean") == 1

    def test_flush_is_idempotent(self):
        tracer = Tracer("t")
        with tracer.span("test", client="cxf"):
            pass
        first = list(tracer.events)
        assert list(tracer.events) == first
        assert tracer.metrics.counter_value("spans_total", name="test") == 1

    def test_current_span_id_tracks_the_open_chain(self):
        tracer = Tracer("t")
        assert tracer.current_span_id == root_span_id("t")
        with tracer.span("server", server="metro") as outer:
            assert tracer.current_span_id == outer.span_id
            with tracer.span("test", client="cxf") as inner:
                assert tracer.current_span_id == inner.span_id
            assert tracer.current_span_id == outer.span_id
        assert tracer.current_span_id == root_span_id("t")

    def test_activate_installs_and_restores(self):
        assert current_tracer() is NULL_TRACER
        tracer = Tracer("t")
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        with null.span("test", client="cxf") as span:
            span.annotate(bucket="clean")
        assert span.span_id == ""
        assert null.current_span_id == ""


class TestMetrics:
    def test_histogram_buckets_and_quantiles(self):
        histogram = Histogram()
        for value in (0.04, 0.2, 3.0, 40.0, 99999.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.total == pytest.approx(100042.24)
        assert histogram.quantile(0.0) >= 0.0
        # the overflow observation clamps to the largest finite bound
        assert histogram.quantile(1.0) == DEFAULT_LATENCY_BUCKETS_MS[-1]

    def test_histogram_bucket_boundary_is_inclusive(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.counts == [1, 0, 0]

    def test_histogram_merge_equals_single_stream(self):
        values = [0.1, 0.9, 4.0, 77.0, 300.0, 8000.0]
        merged = Histogram()
        left, right = Histogram(), Histogram()
        for index, value in enumerate(values):
            merged.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right)
        assert left.counts == merged.counts
        assert left.count == merged.count

    def test_histogram_merge_rejects_different_bounds(self):
        left = Histogram(bounds=(1.0,))
        left.observe(0.5)
        right = Histogram(bounds=(2.0,))
        right.observe(0.5)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_histogram_merge_with_empty_ignores_layout(self):
        # Empty histograms are identities even across layouts: merging
        # one in is a no-op, and an empty receiver adopts the donor's
        # layout instead of rejecting it.
        filled = Histogram(bounds=(1.0,))
        filled.observe(0.5)
        filled.merge(Histogram(bounds=(2.0,)))
        assert filled.counts == [1, 0]

        empty = Histogram(bounds=(2.0,))
        empty.merge(filled)
        assert tuple(empty.bounds) == (1.0,)
        assert empty.counts == [1, 0]

    def test_registry_roundtrip_and_merge(self):
        first = MetricsRegistry()
        first.inc("spans_total", name="test")
        first.set_gauge("workers", 2)
        first.observe("span_ms", 3.0, name="test")
        second = MetricsRegistry()
        second.inc("spans_total", 2, name="test")
        second.observe("span_ms", 40.0, name="test")

        merged = MetricsRegistry()
        merged.merge(first.to_obj())  # dict form, as shipped over the pipe
        merged.merge(second)
        assert merged.counter_value("spans_total", name="test") == 3
        assert merged.gauge_value("workers") == 2
        assert merged.histogram_for("span_ms", name="test").count == 2

    def test_registry_to_events_are_metric_lines(self):
        registry = MetricsRegistry()
        registry.inc("triage_total", bucket="clean")
        registry.observe("span_ms", 1.0, name="test")
        events = registry.to_events()
        assert {event["type"] for event in events} == {"metric"}
        assert {event["kind"] for event in events} == {"counter", "histogram"}


class TestSink:
    def _write_one(self, tmp_path):
        tracer = Tracer(trace_id_for("run", "cfg"))
        with tracer.span("server", server="metro"):
            with tracer.span("test", client="cxf"):
                pass
        tracer.emit_root()
        sink = TraceSink(tmp_path / "trace")
        return sink.write(
            tracer.trace_id, "run", tracer.events, tracer.metrics,
            workers=1,
            worker_events=[{
                "type": "worker", "worker": 1, "busy_pct": 99.0,
                "idle_pct": 1.0, "killed_pct": 0.0, "units": 3,
                "outcome": "retired",
            }],
        )

    def test_write_then_load_roundtrip(self, tmp_path):
        path = self._write_one(tmp_path)
        trace = load_trace(path)
        assert trace["meta"]["campaign"] == "run"
        assert [span["name"] for span in trace["spans"]] == [
            "test", "server", "campaign"
        ]
        assert trace["workers"][0]["outcome"] == "retired"
        assert any(
            event["name"] == "span_ms" for event in trace["metrics_events"]
        )

    def test_load_accepts_directory(self, tmp_path):
        self._write_one(tmp_path)
        assert load_trace(tmp_path / "trace")["meta"]["workers"] == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceValidationError, match="empty"):
            validate_trace_lines([])

    def test_first_line_must_be_meta(self):
        line = json.dumps({
            "type": "span", "id": "a", "parent": "", "name": "x",
            "attrs": {}, "notes": {}, "ms": 1.0, "t0": 0.0,
        })
        with pytest.raises(TraceValidationError, match="meta"):
            validate_trace_lines([line])

    def test_unknown_line_type_rejected(self):
        with pytest.raises(TraceValidationError, match="unknown line type"):
            validate_trace_lines([json.dumps({"type": "bogus"})])

    def test_missing_field_and_wrong_type_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        lines = open(path).read().splitlines()
        meta = json.loads(lines[0])
        del meta["trace_id"]
        with pytest.raises(TraceValidationError, match="trace_id"):
            validate_trace_lines([json.dumps(meta)] + lines[1:])
        meta = json.loads(lines[0])
        meta["workers"] = "two"
        with pytest.raises(TraceValidationError, match="workers"):
            validate_trace_lines([json.dumps(meta)] + lines[1:])

    def test_truncated_trailing_line_is_skipped_not_fatal(self, tmp_path):
        # A writer killed mid-flush leaves a partial last line; readers
        # must keep the intact prefix instead of refusing the trace.
        path = self._write_one(tmp_path)
        intact = load_trace(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "id": "trunc')
        trace = load_trace(path)
        assert trace["skipped_lines"] == 1
        assert [span["id"] for span in trace["spans"]] == [
            span["id"] for span in intact["spans"]
        ]
        lines = open(path).read().splitlines()
        validate_trace_lines(lines)  # tolerated in the trailing slot

    def test_truncated_interior_line_still_rejected(self, tmp_path):
        path = self._write_one(tmp_path)
        lines = open(path).read().splitlines()
        corrupted = lines[:1] + ['{"type": "span", "id": "trunc'] + lines[1:]
        with pytest.raises(TraceValidationError, match="not JSON"):
            validate_trace_lines(corrupted)

    def test_intact_trace_reports_zero_skipped(self, tmp_path):
        path = self._write_one(tmp_path)
        assert load_trace(path)["skipped_lines"] == 0

    def test_schema_mirror_in_tests_data_is_in_sync(self):
        import os

        mirror_path = os.path.join(
            os.path.dirname(__file__), "..", "data", "trace_schema.json"
        )
        with open(mirror_path, encoding="utf-8") as handle:
            assert json.load(handle) == TRACE_SCHEMA


class TestRecorderIntegration:
    class _Response:
        status = 200
        body = "<ok/>"

    class _Transport:
        def post(self, url, body, headers=None):
            return TestRecorderIntegration._Response()

    def test_exchange_carries_enclosing_span_id(self):
        recorder = TransportRecorder(self._Transport())
        recorder.post("http://svc", "<r/>")
        assert recorder.exchanges[0].span_id == ""  # untraced
        tracer = Tracer("t")
        with activate(tracer):
            with tracer.span("invoke", service="EchoA") as span:
                recorder.post("http://svc", "<r/>")
        assert recorder.exchanges[1].span_id == span.span_id

    def test_save_flushes_atomically(self, tmp_path):
        recorder = TransportRecorder(self._Transport())
        recorder.post("http://svc", "<r/>")
        path = recorder.save(tmp_path / "capture.json")
        data = json.load(open(path))
        assert data["exchanges"][0]["url"] == "http://svc"
        assert "span_id" in data["exchanges"][0]

    def test_write_json_atomic_still_used_by_checkpoints(self, tmp_path):
        # the recorder reuses the checkpoint machinery; a plain object
        # written through it must be readable json
        target = tmp_path / "obj.json"
        write_json_atomic({"a": 1}, target)
        assert json.load(open(target)) == {"a": 1}
