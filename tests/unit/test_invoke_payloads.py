"""Payload generator: shapes, seeding, schema honesty, lexical spaces."""

import json

import pytest

from repro.appservers import container_for
from repro.core import Campaign, CampaignConfig
from repro.invoke import (
    DEFAULT_CLASSES,
    FieldShape,
    PayloadClass,
    PayloadGenerator,
    request_shape,
)
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS
from repro.xsd.lexical import (
    boundary_literals,
    integer_bounds,
    lexical_ok,
    value_equal,
)


@pytest.fixture(scope="module")
def deployed_records():
    config = CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
    )
    campaign = Campaign(config)
    records = []
    for server_id in config.server_ids:
        container = container_for(server_id)
        container.deploy_corpus(campaign.corpus_for(server_id))
        records.extend(container.deployed[:3])
    return records


class TestLexical:
    def test_bounded_integer_literals_are_exact(self):
        low, high, zero = boundary_literals("int")
        assert (int(low), int(high)) == integer_bounds("int")
        assert zero == "0"
        assert lexical_ok("int", low) and lexical_ok("int", high)

    def test_out_of_range_integer_rejected(self):
        assert not lexical_ok("byte", "128")
        assert not lexical_ok("unsignedShort", "-1")
        assert lexical_ok("byte", "-128")

    def test_non_numeric_literals(self):
        assert lexical_ok("boolean", "1")
        assert not lexical_ok("boolean", "yes")
        assert lexical_ok("dateTime", "2014-06-22T10:30:00Z")
        assert not lexical_ok("dateTime", "June 22nd")
        assert lexical_ok("duration", "PT5M")
        assert not lexical_ok("duration", "P")
        assert lexical_ok("base64Binary", "c2FtcGxl")
        assert not lexical_ok("base64Binary", "c2F?")
        assert lexical_ok("string", "anything\nat all")

    def test_every_boundary_literal_is_lexically_valid(self):
        for local in (
            "byte", "short", "int", "long", "unsignedByte", "unsignedShort",
            "unsignedInt", "unsignedLong", "integer", "nonNegativeInteger",
            "positiveInteger", "decimal", "float", "double",
        ):
            for literal in boundary_literals(local):
                assert lexical_ok(local, literal), (local, literal)

    def test_value_equality_flattens_representation(self):
        assert value_equal("int", "+007", "7")
        assert value_equal("decimal", "3.140", "3.14")
        assert value_equal("boolean", "1", "true")
        assert not value_equal("boolean", "1", "false")
        assert not value_equal("int", "7", "8")
        assert not value_equal("string", "a", "b")
        assert value_equal("string", "a", "a")


class TestRequestShape:
    def test_shape_resolves_deployed_wsdls(self, deployed_records):
        shaped = 0
        for record in deployed_records:
            fields = request_shape(record.wsdl)
            for field in fields:
                assert isinstance(field, FieldShape)
                assert field.name
                assert field.xsd_local
            shaped += bool(fields)
        assert shaped > 0

    def test_arrays_are_repeated_and_optional(self, deployed_records):
        # The corpus maps bean arrays to minOccurs=0/maxOccurs=unbounded.
        repeated = [
            field
            for record in deployed_records
            for field in request_shape(record.wsdl)
            if field.repeated
        ]
        assert repeated
        assert all(field.optional for field in repeated)


class TestGenerator:
    def test_same_seed_is_byte_identical(self, deployed_records):
        record = deployed_records[0]
        first = PayloadGenerator(7).generate(record.wsdl, record.service.name)
        second = PayloadGenerator(7).generate(record.wsdl, record.service.name)
        assert [(p.label, p.values) for p in first] == [
            (p.label, p.values) for p in second
        ]
        assert json.dumps([p.values for p in first], sort_keys=True) == \
            json.dumps([p.values for p in second], sort_keys=True)

    def test_different_seed_differs_somewhere(self, deployed_records):
        changed = False
        for record in deployed_records:
            a = PayloadGenerator(1).generate(record.wsdl, record.service.name)
            b = PayloadGenerator(2).generate(record.wsdl, record.service.name)
            if [p.values for p in a] != [p.values for p in b]:
                changed = True
                break
        assert changed

    def test_values_respect_field_schema(self, deployed_records):
        for record in deployed_records:
            fields = {
                field.name: field for field in request_shape(record.wsdl)
            }
            payloads = PayloadGenerator(7).generate(
                record.wsdl, record.service.name
            )
            assert payloads, record.service.name
            for payload in payloads:
                if not fields:
                    assert payload.values == {"state": "Ready"}
                    continue
                for name, value in payload.values.items():
                    field = fields[name]
                    self._check_value(field, value)
                # Required fields are never omitted.
                for name, field in fields.items():
                    if not field.optional:
                        assert name in payload.values

    def _check_value(self, field, value):
        if isinstance(value, list):
            assert field.repeated, field.name
            for item in value:
                self._check_scalar(field, item)
        else:
            self._check_scalar(field, value)

    def _check_scalar(self, field, value):
        if value is None:
            assert field.nillable, field.name
            return
        if field.enumerations:
            assert value in field.enumerations
            return
        assert lexical_ok(field.xsd_local, value), (
            field.name, field.xsd_local, value,
        )

    def test_class_filter_limits_output(self, deployed_records):
        record = deployed_records[0]
        generator = PayloadGenerator(7, classes=(PayloadClass.BASELINE,))
        payloads = generator.generate(record.wsdl, record.service.name)
        assert payloads
        assert {p.payload_class for p in payloads} == {PayloadClass.BASELINE}

    def test_labels_and_digests_are_stable(self, deployed_records):
        record = deployed_records[0]
        payloads = PayloadGenerator(7).generate(
            record.wsdl, record.service.name
        )
        labels = [p.label for p in payloads]
        assert len(labels) == len(set(labels))
        again = PayloadGenerator(7).generate(record.wsdl, record.service.name)
        assert [p.digest for p in payloads] == [p.digest for p in again]

    def test_all_default_classes_appear_on_rich_services(self, deployed_records):
        seen = set()
        for record in deployed_records:
            for payload in PayloadGenerator(7).generate(
                record.wsdl, record.service.name
            ):
                seen.add(payload.payload_class)
        # Baseline always fires; the richer classes need matching fields
        # which the quick corpus reliably provides across records.
        assert PayloadClass.BASELINE in seen
        assert len(seen) >= 3
        assert seen <= set(DEFAULT_CLASSES)
