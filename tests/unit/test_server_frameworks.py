"""Unit tests for the three server framework models."""

import pytest

from repro.frameworks.server import JBossWsCxfServer, MetroServer, WcfNetServer
from repro.services import ServiceDefinition
from repro.typesystem import (
    CtorVisibility,
    Language,
    Property,
    SimpleType,
    Trait,
    TypeInfo,
    TypeKind,
)
from repro.wsi import check_document
from repro.xmlcore import QName, XML_NS, XSD_NS
from repro.xmlcore.names import WSA_NS
from repro.xsd import AnyParticle, RefParticle

URL = "http://localhost:8080/svc"


def _plain(language=Language.JAVA, **kwargs):
    return TypeInfo(language, "pkg", "Plain",
                    properties=(Property("size", SimpleType.INT),), **kwargs)


def _wsdl(server, type_info):
    outcome = server.deploy(ServiceDefinition(type_info), URL)
    assert outcome.accepted, outcome.reason
    return outcome.wsdl


class TestBindingRules:
    @pytest.mark.parametrize("server_class", [MetroServer, JBossWsCxfServer, WcfNetServer])
    def test_plain_class_binds(self, server_class):
        assert server_class().can_bind(_plain())

    @pytest.mark.parametrize("server_class", [MetroServer, JBossWsCxfServer, WcfNetServer])
    @pytest.mark.parametrize(
        "kind", [TypeKind.INTERFACE, TypeKind.ABSTRACT_CLASS, TypeKind.ANNOTATION]
    )
    def test_non_concrete_kinds_rejected(self, server_class, kind):
        entry = _plain(kind=kind)
        assert not server_class().can_bind(entry)

    @pytest.mark.parametrize("server_class", [MetroServer, JBossWsCxfServer, WcfNetServer])
    def test_generic_rejected(self, server_class):
        assert not server_class().can_bind(_plain(is_generic=True))

    def test_metro_tolerates_protected_ctor(self):
        entry = _plain(ctor=CtorVisibility.PROTECTED)
        assert MetroServer().can_bind(entry)
        assert not JBossWsCxfServer().can_bind(entry)
        assert not WcfNetServer().can_bind(entry)

    def test_async_handle_split_decision(self):
        future = TypeInfo(
            Language.JAVA, "java.util.concurrent", "Future",
            kind=TypeKind.INTERFACE, ctor=CtorVisibility.NONE, is_generic=True,
            traits=frozenset({Trait.ASYNC_HANDLE}),
        )
        assert not MetroServer().can_bind(future)
        assert JBossWsCxfServer().can_bind(future)

    def test_metro_refusal_reason_mentions_async(self):
        future = TypeInfo(
            Language.JAVA, "p", "Future", kind=TypeKind.INTERFACE,
            ctor=CtorVisibility.NONE, traits=frozenset({Trait.ASYNC_HANDLE}),
        )
        outcome = MetroServer().deploy(ServiceDefinition(future), URL)
        assert not outcome.accepted
        assert "refused deployment" in outcome.reason


class TestCommonEmission:
    def test_document_literal_wrapped_shape(self):
        document = _wsdl(MetroServer(), _plain())
        assert len(document.operations) == 1
        operation = document.operations[0]
        assert operation.name == "echoPlain"
        wrapper = document.global_element(
            QName(document.target_namespace, "echoPlain")
        )
        assert wrapper.inline_type.particles[0].name == "input"
        response = document.global_element(
            QName(document.target_namespace, "echoPlainResponse")
        )
        assert response.inline_type.particles[0].name == "return"

    def test_named_bean_type_emitted(self):
        document = _wsdl(MetroServer(), _plain())
        bean = document.schemas[0].complex_type("Plain")
        assert bean is not None
        assert bean.particles[0].name == "size"
        assert bean.particles[0].type_name == QName(XSD_NS, "int")

    def test_array_property_unbounded(self):
        entry = TypeInfo(
            Language.JAVA, "pkg", "Arr",
            properties=(Property("items", SimpleType.STRING, is_array=True),),
        )
        document = _wsdl(MetroServer(), entry)
        particle = document.schemas[0].complex_type("Arr").particles[0]
        assert particle.max_occurs is None
        assert particle.min_occurs == 0

    def test_enum_emitted_as_simple_type(self):
        entry = TypeInfo(
            Language.JAVA, "pkg", "Status", kind=TypeKind.ENUM,
            enum_values=("Open", "Closed"),
        )
        document = _wsdl(JBossWsCxfServer(), entry)
        simple = document.schemas[0].simple_type("Status")
        assert simple.enumerations == ("Open", "Closed")

    def test_clean_service_is_wsi_conformant(self):
        report = check_document(_wsdl(MetroServer(), _plain()))
        assert report.clean

    def test_java_servers_mark_jaxws_extension(self):
        assert "jaxws-bindings" in _wsdl(MetroServer(), _plain()).extension_markers
        assert "jaxws-bindings" in _wsdl(JBossWsCxfServer(), _plain()).extension_markers

    def test_wcf_uses_s_prefix_and_own_marker(self):
        document = _wsdl(WcfNetServer(), _plain(language=Language.CSHARP))
        assert document.schema_prefix == "s"
        assert "wcf-metadata" in document.extension_markers


class TestMetroQuirks:
    def test_epr_emits_locationless_import(self):
        entry = TypeInfo(
            Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
            properties=(Property("address", SimpleType.URI),),
            traits=frozenset({Trait.WS_ADDRESSING_EPR}),
        )
        document = _wsdl(MetroServer(), entry)
        imports = document.schemas[0].imports
        assert imports and imports[0].namespace == WSA_NS
        assert imports[0].location is None
        assert not check_document(document).conformant

    def test_sdf_emits_duplicate_attribute(self):
        entry = TypeInfo(
            Language.JAVA, "java.text", "SimpleDateFormat",
            properties=(Property("pattern"),),
            traits=frozenset({Trait.LOCALE_FORMAT}),
        )
        document = _wsdl(MetroServer(), entry)
        attributes = document.schemas[0].complex_type("SimpleDateFormat").attributes
        assert [a.name for a in attributes] == ["lenient", "lenient"]


class TestJBossWsQuirks:
    def test_async_handle_yields_empty_port_type(self):
        future = TypeInfo(
            Language.JAVA, "java.util.concurrent", "Future",
            kind=TypeKind.INTERFACE, ctor=CtorVisibility.NONE,
            traits=frozenset({Trait.ASYNC_HANDLE}),
        )
        document = _wsdl(JBossWsCxfServer(), future)
        assert document.operations == []
        assert document.messages == []
        report = check_document(document)
        assert report.conformant and report.advisories

    def test_epr_emits_dangling_reference(self):
        entry = TypeInfo(
            Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
            traits=frozenset({Trait.WS_ADDRESSING_EPR}),
        )
        document = _wsdl(JBossWsCxfServer(), entry)
        bean = document.schemas[0].complex_type("W3CEndpointReference")
        refs = [p for p in bean.particles if isinstance(p, RefParticle)]
        assert refs and refs[0].ref.namespace == WSA_NS
        assert not document.schemas[0].imports

    def test_sdf_emits_notation_attribute(self):
        entry = TypeInfo(
            Language.JAVA, "java.text", "SimpleDateFormat",
            traits=frozenset({Trait.LOCALE_FORMAT}),
        )
        document = _wsdl(JBossWsCxfServer(), entry)
        attributes = document.schemas[0].complex_type("SimpleDateFormat").attributes
        assert attributes[0].type_name == QName(XSD_NS, "NOTATION")


class TestWcfQuirks:
    def _entry(self, name="Rows", traits=()):
        return TypeInfo(
            Language.CSHARP, "System.Data", name,
            properties=(Property("TableName"),),
            traits=frozenset(traits),
        )

    def test_dataset_schema_ref_pattern(self):
        document = _wsdl(
            WcfNetServer(), self._entry(traits={Trait.DATASET_SCHEMA_REF})
        )
        bean = document.schemas[0].complex_type("Rows")
        assert isinstance(bean.particles[0], RefParticle)
        assert bean.particles[0].ref == QName(XSD_NS, "schema")
        assert isinstance(bean.particles[1], AnyParticle)
        assert not check_document(document).conformant

    def test_keyref_constraint_added(self):
        document = _wsdl(
            WcfNetServer(),
            self._entry(traits={Trait.DATASET_SCHEMA_REF, Trait.SCHEMA_KEYREF}),
        )
        bean = document.schemas[0].complex_type("Rows")
        assert bean.constraints[0].kind == "keyref"

    def test_recursive_ref_creates_cycle(self):
        document = _wsdl(
            WcfNetServer(),
            self._entry(traits={Trait.DATASET_SCHEMA_REF, Trait.RECURSIVE_SCHEMA_REF}),
        )
        bean = document.schemas[0].complex_type("Rows")
        tns = document.target_namespace
        assert any(
            isinstance(p, RefParticle) and p.ref == QName(tns, "echoRows")
            for p in bean.particles
        )

    def test_self_warn_emits_id_attribute(self):
        document = _wsdl(
            WcfNetServer(),
            self._entry(traits={Trait.DATASET_SCHEMA_REF, Trait.SELF_WARN}),
        )
        bean = document.schemas[0].complex_type("Rows")
        assert bean.attributes[0].type_name == QName(XSD_NS, "ID")

    def test_any_content_mixed_for_table_types(self):
        document = _wsdl(
            WcfNetServer(),
            self._entry(traits={Trait.ANY_CONTENT, Trait.MIXED_CONTENT}),
        )
        bean = document.schemas[0].complex_type("Rows")
        assert bean.mixed
        wildcard = [p for p in bean.particles if isinstance(p, AnyParticle)]
        assert wildcard and wildcard[0].process_contents == "lax"
        assert check_document(document).conformant

    def test_xml_lang_reference(self):
        document = _wsdl(WcfNetServer(), self._entry(traits={Trait.XML_LANG_ATTR}))
        bean = document.schemas[0].complex_type("Rows")
        assert bean.attributes[0].ref == QName(XML_NS, "lang")
        assert not check_document(document).conformant
