"""Unit tests for the seeded WSDL/XML corruption operators."""

import pytest

from repro.appservers import GlassFish
from repro.faults import (
    DEFAULT_MUTATION_KINDS,
    MutationKind,
    WsdlMutator,
)
from repro.services import ServiceDefinition
from repro.typesystem import Language, Property, SimpleType, TypeInfo


@pytest.fixture(scope="module")
def wsdl_text():
    entry = TypeInfo(
        Language.JAVA, "pkg", "Corpus",
        properties=(
            Property("name", SimpleType.STRING),
            Property("count", SimpleType.INT),
        ),
    )
    record = GlassFish().deploy(ServiceDefinition(entry))
    assert record.accepted
    return record.wsdl_text


class TestDeterminism:
    def test_same_recipe_same_mutant(self, wsdl_text):
        first = WsdlMutator(7).mutate(
            wsdl_text, MutationKind.TRUNCATION, 0.5, "metro", "Corpus", 0
        )
        second = WsdlMutator(7).mutate(
            wsdl_text, MutationKind.TRUNCATION, 0.5, "metro", "Corpus", 0
        )
        assert first.text == second.text
        assert first.seed == second.seed

    def test_different_seed_different_mutant(self, wsdl_text):
        first = WsdlMutator(7).mutate(wsdl_text, MutationKind.TRUNCATION, 0.9)
        second = WsdlMutator(8).mutate(wsdl_text, MutationKind.TRUNCATION, 0.9)
        assert first.text != second.text

    def test_labels_decorrelate_mutants(self, wsdl_text):
        mutator = WsdlMutator(7)
        first = mutator.mutate(wsdl_text, MutationKind.TRUNCATION, 0.9, "a")
        second = mutator.mutate(wsdl_text, MutationKind.TRUNCATION, 0.9, "b")
        assert first.seed != second.seed
        assert first.text != second.text

    def test_corpus_order_is_stable(self, wsdl_text):
        mutator = WsdlMutator(11)
        first = mutator.corpus(wsdl_text, intensities=(0.2, 0.8), per_config=2)
        second = mutator.corpus(wsdl_text, intensities=(0.2, 0.8), per_config=2)
        assert [m.text for m in first] == [m.text for m in second]
        assert len(first) == len(DEFAULT_MUTATION_KINDS) * 2 * 2


class TestOperators:
    def test_truncation_shrinks(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(wsdl_text, MutationKind.TRUNCATION, 1.0)
        assert 0 < len(mutant.text) < len(wsdl_text)

    def test_tag_imbalance_changes_close_tags(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(
            wsdl_text, MutationKind.TAG_IMBALANCE, 0.8
        )
        assert mutant.text != wsdl_text

    def test_namespace_clobber_touches_xmlns(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(
            wsdl_text, MutationKind.NAMESPACE_CLOBBER, 1.0
        )
        assert mutant.text != wsdl_text

    def test_garbage_injected_scales_with_intensity(self, wsdl_text):
        gentle = WsdlMutator(3).mutate(
            wsdl_text, MutationKind.ENCODING_GARBAGE, 0.0
        )
        brutal = WsdlMutator(3).mutate(
            wsdl_text, MutationKind.ENCODING_GARBAGE, 1.0
        )
        assert len(gentle.text) > len(wsdl_text)
        assert len(brutal.text) > len(gentle.text)

    def test_attribute_duplication(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(
            wsdl_text, MutationKind.ATTRIBUTE_DUPLICATION, 0.5
        )
        assert len(mutant.text) > len(wsdl_text)

    def test_deep_nesting_adds_depth(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(wsdl_text, MutationKind.DEEP_NESTING, 1.0)
        assert mutant.text.count("<n0>") >= 200

    def test_huge_text_is_megabyte_scale(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(wsdl_text, MutationKind.HUGE_TEXT, 1.0)
        assert len(mutant.text) > 1_500_000

    def test_kind_accepts_string_value(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(wsdl_text, "truncation", 0.5)
        assert mutant.kind is MutationKind.TRUNCATION

    def test_intensity_clamped(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(wsdl_text, MutationKind.TRUNCATION, 7.5)
        assert mutant.intensity == 1.0

    def test_unknown_kind_rejected(self, wsdl_text):
        with pytest.raises(ValueError):
            WsdlMutator(3).mutate(wsdl_text, "coffee-spill", 0.5)

    def test_mutant_repr_names_recipe(self, wsdl_text):
        mutant = WsdlMutator(3).mutate(
            wsdl_text, MutationKind.TRUNCATION, 0.5, "metro", "Svc", 1
        )
        assert "truncation" in repr(mutant)
        assert mutant.label == "metro:Svc:1"
