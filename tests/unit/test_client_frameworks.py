"""Unit tests for the eleven client framework models.

Each test deploys a purpose-built service on a real server model and
asserts the documented tool behaviour — so it exercises the whole
WSDL-emission → serialization → parsing → generation path.
"""

import pytest

from repro.appservers import GlassFish, IisExpress, JBossAs
from repro.artifacts import UnitKind
from repro.frameworks.client import (
    Axis1Client,
    Axis2Client,
    CxfClient,
    DotNetCSharpClient,
    DotNetJScriptClient,
    DotNetVisualBasicClient,
    GSoapClient,
    JBossWsClient,
    MetroClient,
    SudsClient,
    ZendClient,
)
from repro.services import ServiceDefinition
from repro.typesystem import (
    CtorVisibility,
    Language,
    Property,
    SimpleType,
    Trait,
    TypeInfo,
    TypeKind,
)
from repro.typesystem.model import (
    properties_with_case_collision,
    script_unfriendly_properties,
)
from repro.typesystem.synthesis import throwable_properties
from repro.wsdl import read_wsdl_text


def _deploy(container, type_info):
    record = container.deploy(ServiceDefinition(type_info))
    assert record.accepted, record.reason
    return read_wsdl_text(record.wsdl_text)


def _plain_java(name="Plain"):
    return TypeInfo(Language.JAVA, "pkg", name,
                    properties=(Property("size", SimpleType.INT),))


def _plain_cs(name="Plain"):
    return TypeInfo(Language.CSHARP, "System", name,
                    properties=(Property("Size", SimpleType.INT),))


@pytest.fixture()
def plain_java_wsdl():
    return _deploy(GlassFish(), _plain_java())


@pytest.fixture()
def async_wsdl():
    future = TypeInfo(
        Language.JAVA, "java.util.concurrent", "Future",
        kind=TypeKind.INTERFACE, ctor=CtorVisibility.NONE,
        traits=frozenset({Trait.ASYNC_HANDLE}),
    )
    return _deploy(JBossAs(), future)


@pytest.fixture()
def metro_epr_wsdl():
    entry = TypeInfo(
        Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
        properties=(Property("address", SimpleType.URI),),
        traits=frozenset({Trait.WS_ADDRESSING_EPR}),
    )
    return _deploy(GlassFish(), entry)


@pytest.fixture()
def dataset_ref_wsdl():
    entry = TypeInfo(
        Language.CSHARP, "System.Data", "RowsHolder",
        properties=(Property("TableName"),),
        traits=frozenset({Trait.DATASET_SCHEMA_REF}),
    )
    return _deploy(IisExpress(), entry)


ALL_CLIENTS = [
    MetroClient, Axis1Client, Axis2Client, CxfClient, JBossWsClient,
    DotNetCSharpClient, DotNetVisualBasicClient, DotNetJScriptClient,
    GSoapClient, ZendClient, SudsClient,
]


class TestHappyPath:
    @pytest.mark.parametrize("client_class", ALL_CLIENTS)
    def test_plain_service_generates(self, client_class, plain_java_wsdl):
        result = client_class().generate(plain_java_wsdl)
        assert result.succeeded
        assert result.bundle is not None

    @pytest.mark.parametrize("client_class", ALL_CLIENTS)
    def test_stub_exposes_the_echo_operation(self, client_class, plain_java_wsdl):
        result = client_class().generate(plain_java_wsdl)
        names = [m.name for m in result.bundle.operation_methods]
        assert names == ["echoPlain"]

    def test_bean_unit_mirrors_schema_type(self, plain_java_wsdl):
        result = MetroClient().generate(plain_java_wsdl)
        bean = result.bundle.unit("Plain")
        assert bean is not None
        assert bean.field_names() == ["size"]

    def test_compiled_clients_compile_cleanly(self, plain_java_wsdl):
        for client_class in (MetroClient, CxfClient, JBossWsClient,
                             DotNetCSharpClient, GSoapClient):
            client = client_class()
            result = client.generate(plain_java_wsdl)
            compiled = client.compiler.compile(result.bundle)
            assert compiled.succeeded and not compiled.warnings


class TestEmptyPortTypeBehaviours:
    def test_metro_errors(self, async_wsdl):
        result = MetroClient().generate(async_wsdl)
        assert not result.succeeded
        assert result.errors[0].code == "no-operations"

    @pytest.mark.parametrize(
        "client_class",
        [Axis2Client, DotNetCSharpClient, DotNetVisualBasicClient,
         DotNetJScriptClient, GSoapClient],
    )
    def test_strict_tools_error(self, client_class, async_wsdl):
        assert not client_class().generate(async_wsdl).succeeded

    @pytest.mark.parametrize("client_class", [Axis1Client, CxfClient, JBossWsClient])
    def test_silent_tools_emit_empty_stub(self, client_class, async_wsdl):
        result = client_class().generate(async_wsdl)
        assert result.succeeded
        assert not result.warnings
        assert result.bundle.operation_methods == []

    @pytest.mark.parametrize("client_class", [ZendClient, SudsClient])
    def test_dynamic_tools_warn_about_methodless_client(self, client_class, async_wsdl):
        result = client_class().generate(async_wsdl)
        assert result.succeeded
        assert any(d.code == "empty-client" for d in result.warnings)


class TestImportResolution:
    @pytest.mark.parametrize(
        "client_class",
        [MetroClient, Axis1Client, Axis2Client, CxfClient, JBossWsClient,
         DotNetCSharpClient, SudsClient],
    )
    def test_strict_resolvers_error_on_locationless_import(
        self, client_class, metro_epr_wsdl
    ):
        result = client_class().generate(metro_epr_wsdl)
        assert any(d.code == "unresolved-import" for d in result.errors)

    @pytest.mark.parametrize("client_class", [GSoapClient, ZendClient])
    def test_tolerant_tools_accept_locationless_import(
        self, client_class, metro_epr_wsdl
    ):
        assert client_class().generate(metro_epr_wsdl).succeeded


class TestDanglingReferences:
    @pytest.fixture()
    def jboss_epr_wsdl(self):
        entry = TypeInfo(
            Language.JAVA, "javax.xml.ws.wsaddressing", "W3CEndpointReference",
            traits=frozenset({Trait.WS_ADDRESSING_EPR}),
        )
        return _deploy(JBossAs(), entry)

    @pytest.mark.parametrize(
        "client_class",
        [MetroClient, Axis1Client, CxfClient, JBossWsClient,
         DotNetCSharpClient, SudsClient],
    )
    def test_strict_tools_error(self, client_class, jboss_epr_wsdl):
        result = client_class().generate(jboss_epr_wsdl)
        assert any(d.code == "undefined-element" for d in result.errors)

    @pytest.mark.parametrize("client_class", [Axis2Client, GSoapClient, ZendClient])
    def test_tolerant_tools_accept(self, client_class, jboss_epr_wsdl):
        assert client_class().generate(jboss_epr_wsdl).succeeded


class TestSchemaInInstance:
    def test_jaxb_tools_report_undefined_s_schema(self, dataset_ref_wsdl):
        result = MetroClient().generate(dataset_ref_wsdl)
        assert not result.succeeded
        assert "undefined element declaration 's:schema'" in result.errors[0].message

    def test_dotnet_handles_natively(self, dataset_ref_wsdl):
        assert DotNetCSharpClient().generate(dataset_ref_wsdl).succeeded

    def test_axis_maps_to_anytype(self, dataset_ref_wsdl):
        result = Axis1Client().generate(dataset_ref_wsdl)
        assert result.succeeded
        bean = result.bundle.unit("RowsHolder")
        assert "schema" in bean.field_names()

    def test_suds_tolerates(self, dataset_ref_wsdl):
        assert SudsClient().generate(dataset_ref_wsdl).succeeded


class TestAttributeValidation:
    @pytest.fixture()
    def metro_sdf_wsdl(self):
        entry = TypeInfo(
            Language.JAVA, "java.text", "SimpleDateFormat",
            properties=(Property("pattern"),),
            traits=frozenset({Trait.LOCALE_FORMAT}),
        )
        return _deploy(GlassFish(), entry)

    @pytest.fixture()
    def jboss_sdf_wsdl(self):
        entry = TypeInfo(
            Language.JAVA, "java.text", "SimpleDateFormat",
            properties=(Property("pattern"),),
            traits=frozenset({Trait.LOCALE_FORMAT}),
        )
        return _deploy(JBossAs(), entry)

    @pytest.mark.parametrize(
        "client_class",
        [DotNetCSharpClient, DotNetVisualBasicClient, DotNetJScriptClient, GSoapClient],
    )
    def test_validators_reject_duplicate_attribute(self, client_class, metro_sdf_wsdl):
        result = client_class().generate(metro_sdf_wsdl)
        assert any(d.code == "duplicate-attribute" for d in result.errors)

    @pytest.mark.parametrize(
        "client_class", [MetroClient, Axis1Client, CxfClient, SudsClient, ZendClient]
    )
    def test_jaxb_family_tolerates_duplicate_attribute(
        self, client_class, metro_sdf_wsdl
    ):
        assert client_class().generate(metro_sdf_wsdl).succeeded

    @pytest.mark.parametrize(
        "client_class",
        [DotNetCSharpClient, DotNetVisualBasicClient, DotNetJScriptClient],
    )
    def test_dotnet_rejects_notation_attribute(self, client_class, jboss_sdf_wsdl):
        result = client_class().generate(jboss_sdf_wsdl)
        assert any(d.code == "invalid-attribute-type" for d in result.errors)

    def test_gsoap_tolerates_notation(self, jboss_sdf_wsdl):
        assert GSoapClient().generate(jboss_sdf_wsdl).succeeded


class TestWildcards:
    @pytest.fixture()
    def any_wsdl(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Data", "DataSetLike",
            properties=(Property("TableName"),),
            traits=frozenset({Trait.ANY_CONTENT, Trait.MIXED_CONTENT}),
        )
        return _deploy(IisExpress(), entry)

    @pytest.mark.parametrize(
        "client_class", [MetroClient, CxfClient, JBossWsClient, Axis1Client]
    )
    def test_lax_wildcard_rejected(self, client_class, any_wsdl):
        result = client_class().generate(any_wsdl)
        assert any(d.code == "wildcard-unsupported" for d in result.errors)

    def test_axis2_generates_duplicate_fields_for_mixed(self, any_wsdl):
        client = Axis2Client()
        result = client.generate(any_wsdl)
        assert result.succeeded
        compiled = client.compiler.compile(result.bundle)
        assert any(d.code == "duplicate-member" for d in compiled.errors)

    def test_dotnet_and_gsoap_accept(self, any_wsdl):
        assert DotNetCSharpClient().generate(any_wsdl).succeeded
        assert GSoapClient().generate(any_wsdl).succeeded


class TestKeyrefAndRecursion:
    def test_gsoap_rejects_keyref(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Data", "KeyedRows",
            traits=frozenset({Trait.DATASET_SCHEMA_REF, Trait.SCHEMA_KEYREF}),
        )
        document = _deploy(IisExpress(), entry)
        result = GSoapClient().generate(document)
        assert any(d.code == "keyref-unsupported" for d in result.errors)
        assert "soapcpp2" in result.errors[-1].message

    def test_suds_fails_on_recursive_schema(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Data", "SelfRows",
            traits=frozenset({Trait.DATASET_SCHEMA_REF, Trait.RECURSIVE_SCHEMA_REF}),
        )
        document = _deploy(IisExpress(), entry)
        result = SudsClient().generate(document)
        assert any(d.code == "recursive-reference" for d in result.errors)

    def test_axis_unbothered_by_recursion(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Data", "SelfRows",
            traits=frozenset({Trait.DATASET_SCHEMA_REF, Trait.RECURSIVE_SCHEMA_REF}),
        )
        document = _deploy(IisExpress(), entry)
        client = Axis2Client()
        result = client.generate(document)
        assert result.succeeded
        assert client.compiler.compile(result.bundle).succeeded


class TestCodegenBugs:
    def test_axis1_throwable_wrapper_bug(self):
        entry = TypeInfo(
            Language.JAVA, "java.io", "StreamClosedException",
            properties=throwable_properties(),
            traits=frozenset({Trait.THROWABLE}),
        )
        document = _deploy(GlassFish(), entry)
        client = Axis1Client()
        result = client.generate(document)
        assert result.succeeded
        compiled = client.compiler.compile(result.bundle)
        assert any(
            d.code == "unresolved-symbol" and "faultDetail" in d.message
            for d in compiled.errors
        )

    def test_axis1_heuristic_needs_message_property(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Net.Sockets", "SocketThing",
            properties=(Property("Size", SimpleType.INT),),
        )
        document = _deploy(IisExpress(), entry)
        client = Axis1Client()
        compiled = client.compiler.compile(client.generate(document).bundle)
        assert compiled.succeeded

    def test_axis2_acronym_bug_on_xml_calendar(self):
        entry = TypeInfo(
            Language.JAVA, "javax.xml.datatype", "XMLGregorianCalendar",
            properties=(Property("year", SimpleType.INT),),
            traits=frozenset({Trait.XML_CALENDAR}),
        )
        document = _deploy(GlassFish(), entry)
        client = Axis2Client()
        compiled = client.compiler.compile(client.generate(document).bundle)
        assert any("localXMLGregorianCalendar" in d.message for d in compiled.errors)

    def test_axis2_acronym_bug_spares_ioexception(self):
        entry = TypeInfo(
            Language.JAVA, "java.io", "IOException",
            properties=throwable_properties(),
            traits=frozenset({Trait.THROWABLE}),
        )
        document = _deploy(GlassFish(), entry)
        client = Axis2Client()
        compiled = client.compiler.compile(client.generate(document).bundle)
        assert compiled.succeeded

    def test_axis2_enum_normalization_collision(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Net.Sockets", "SocketError",
            kind=TypeKind.ENUM,
            enum_values=("InProgress", "inProgress", "TimedOut"),
            traits=frozenset({Trait.CASE_COLLIDING_ENUM}),
        )
        document = _deploy(IisExpress(), entry)
        client = Axis2Client()
        compiled = client.compiler.compile(client.generate(document).bundle)
        assert any(d.code == "duplicate-enum-constant" for d in compiled.errors)

    def test_dotnet_enum_constants_deduplicated(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Net.Sockets", "SocketError",
            kind=TypeKind.ENUM,
            enum_values=("InProgress", "inProgress"),
            traits=frozenset({Trait.CASE_COLLIDING_ENUM}),
        )
        document = _deploy(IisExpress(), entry)
        client = DotNetVisualBasicClient()
        result = client.generate(document)
        compiled = client.compiler.compile(result.bundle)
        assert compiled.succeeded
        enum_unit = result.bundle.unit("SocketError")
        assert enum_unit.enum_constants == ["InProgress", "inProgress1"]

    def test_vb_case_collision_compile_error(self):
        entry = TypeInfo(
            Language.JAVA, "java.beans", "FeatureDescriptor",
            properties=properties_with_case_collision(),
            traits=frozenset({Trait.CASE_COLLIDING_PROPERTIES}),
        )
        document = _deploy(GlassFish(), entry)
        client = DotNetVisualBasicClient()
        compiled = client.compiler.compile(client.generate(document).bundle)
        assert any(d.code == "duplicate-member" for d in compiled.errors)

    def test_csharp_unaffected_by_case_collision(self):
        entry = TypeInfo(
            Language.JAVA, "java.beans", "FeatureDescriptor",
            properties=properties_with_case_collision(),
            traits=frozenset({Trait.CASE_COLLIDING_PROPERTIES}),
        )
        document = _deploy(GlassFish(), entry)
        client = DotNetCSharpClient()
        assert client.compiler.compile(client.generate(document).bundle).succeeded

    def test_jscript_missing_helper(self):
        entry = TypeInfo(
            Language.JAVA, "pkg", "Segmented",
            properties=script_unfriendly_properties(depth=2),
            traits=frozenset({Trait.SCRIPT_UNFRIENDLY}),
        )
        document = _deploy(GlassFish(), entry)
        client = DotNetJScriptClient()
        compiled = client.compiler.compile(client.generate(document).bundle)
        assert any("ToNullableArray" in d.message for d in compiled.errors)

    def test_jscript_compiler_crash_on_deep_shapes(self):
        entry = TypeInfo(
            Language.CSHARP, "System", "DeepSegments",
            properties=script_unfriendly_properties(depth=5),
            traits=frozenset({Trait.SCRIPT_UNFRIENDLY, Trait.SCRIPT_CRASHER}),
        )
        document = _deploy(IisExpress(), entry)
        client = DotNetJScriptClient()
        compiled = client.compiler.compile(client.generate(document).bundle)
        assert compiled.errors[0].message == "131 INTERNAL COMPILER CRASH"


class TestToolChatter:
    def test_jscript_warns_on_java_wsdls(self, plain_java_wsdl):
        result = DotNetJScriptClient().generate(plain_java_wsdl)
        assert any(d.code == "unknown-extension" for d in result.warnings)

    def test_jscript_quiet_on_own_platform(self):
        document = _deploy(IisExpress(), _plain_cs())
        result = DotNetJScriptClient().generate(document)
        assert not result.warnings

    def test_csharp_quiet_on_java_wsdls(self, plain_java_wsdl):
        assert not DotNetCSharpClient().generate(plain_java_wsdl).warnings

    def test_dotnet_warns_on_id_attribute(self):
        entry = TypeInfo(
            Language.CSHARP, "System.Data", "WarnRows",
            traits=frozenset({Trait.DATASET_SCHEMA_REF, Trait.SELF_WARN}),
        )
        document = _deploy(IisExpress(), entry)
        result = DotNetCSharpClient().generate(document)
        assert result.succeeded
        assert any(d.code == "schema-validation" for d in result.warnings)

    def test_axis_raw_helper_warns_every_compile(self, plain_java_wsdl):
        for client in (Axis1Client(), Axis2Client()):
            compiled = client.compiler.compile(client.generate(plain_java_wsdl).bundle)
            assert len(compiled.warnings) == 1
            assert "unchecked" in compiled.warnings[0].message

    def test_axis_partial_output_still_compiles(self, metro_epr_wsdl):
        client = Axis1Client()
        result = client.generate(metro_epr_wsdl)
        assert not result.succeeded
        assert result.bundle is not None and result.bundle.partial
        compiled = client.compiler.compile(result.bundle)
        assert compiled.succeeded and compiled.warnings

    def test_non_axis_tools_produce_no_partial_output(self, metro_epr_wsdl):
        result = MetroClient().generate(metro_epr_wsdl)
        assert result.bundle is None


class TestDynamicClients:
    def test_proxy_unit_kind(self, plain_java_wsdl):
        result = SudsClient().generate(plain_java_wsdl)
        proxies = [u for u in result.bundle.units if u.kind is UnitKind.PROXY]
        assert proxies

    def test_instantiate_flags_empty_bundle(self):
        client = ZendClient()
        assert client.instantiate(None)
        assert client.instantiate(None)[0].code == "empty-client"

    def test_table2_metadata(self):
        assert not ZendClient.requires_compilation
        assert not SudsClient.requires_compilation
        assert ZendClient.language == "PHP"
        assert SudsClient.language == "Python"
