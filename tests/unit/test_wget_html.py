"""Unit tests for wget-style mirroring and the HTML report."""

import os

from repro.docweb import build_site
from repro.docweb.wget import extract_type_list, mirror_site
from repro.reporting import render_html_report
from repro.typesystem import Catalog, Language, Property, TypeInfo


def _catalog():
    entries = [
        TypeInfo(Language.JAVA, "java.util", "Date",
                 properties=(Property("time"),)),
        TypeInfo(Language.JAVA, "java.io", "File"),
    ]
    return Catalog(Language.JAVA, entries)


class TestMirror:
    def test_all_pages_written(self, tmp_path):
        site = build_site(_catalog())
        stats = mirror_site(site, str(tmp_path))
        assert stats.pages_written == len(site)
        assert stats.bytes_written > 0

    def test_directory_layout_follows_paths(self, tmp_path):
        site = build_site(_catalog())
        mirror_site(site, str(tmp_path))
        assert (tmp_path / "index.html").exists()
        assert (tmp_path / "packages" / "java.util.html").exists()
        assert (tmp_path / "types" / "java.util.Date.html").exists()

    def test_log_written(self, tmp_path):
        site = build_site(_catalog())
        stats = mirror_site(site, str(tmp_path))
        log = open(stats.log_path).read()
        assert "FINISHED" in log
        assert log.count("saved ") == stats.pages_written

    def test_extract_type_list_from_disk(self, tmp_path):
        catalog = _catalog()
        mirror_site(build_site(catalog), str(tmp_path))
        harvested = extract_type_list(str(tmp_path))
        assert [name for __, name in harvested] == sorted(
            e.full_name for e in catalog
        )
        assert all(kind == "class" for kind, __ in harvested)

    def test_quick_catalog_mirrors_completely(self, quick_java_catalog, tmp_path):
        stats = mirror_site(build_site(quick_java_catalog), str(tmp_path))
        harvested = extract_type_list(str(tmp_path))
        assert len(harvested) == len(quick_java_catalog)
        assert stats.pages_written == len(quick_java_catalog) + len(
            quick_java_catalog.namespaces()
        ) + 1


class TestHtmlReport:
    def test_self_contained_page(self, quick_campaign_result):
        html = render_html_report(quick_campaign_result)
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "<style>" in html

    def test_sections_present(self, quick_campaign_result):
        html = render_html_report(quick_campaign_result)
        for heading in (
            "Headline numbers",
            "Overview per server framework",
            "Detailed results (Table III)",
            "Interoperability verdicts",
        ):
            assert heading in html

    def test_all_clients_listed(self, quick_campaign_result):
        html = render_html_report(quick_campaign_result)
        for client_id in quick_campaign_result.client_ids:
            assert f">{client_id}</td>" in html

    def test_verdict_classes_used(self, quick_campaign_result):
        html = render_html_report(quick_campaign_result)
        assert "verdict-full" in html
        assert "verdict-broken" in html or "verdict-partial" in html

    def test_title_escaped(self, quick_campaign_result):
        html = render_html_report(quick_campaign_result, title="A <&> B")
        assert "A &lt;&amp;&gt; B" in html
