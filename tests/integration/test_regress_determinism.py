"""Regression fleet end-to-end: empty diffs, perturbation, kill -9.

The gate's acceptance bar: identical back-to-back sweeps diff empty for
workers 1/2/4; a seeded single-cell perturbation is reported as exactly
one classified entry with drill-down evidence; and a regress sweep
SIGKILLed mid-flight resumes from its per-campaign checkpoints to a
byte-identical drift report.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core import CampaignConfig
from repro.regress import (
    BaselineStore,
    build_configs,
    build_report,
    run_sweeps,
)
from repro.reporting import regress_to_json
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

CAMPAIGNS = ("run", "invoke")


def _configs():
    return build_configs(
        CAMPAIGNS,
        CampaignConfig(
            java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
        ),
        sample=2,
        payloads_per_class=1,
    )


def _sweep(workers=1, checkpoint_dir=None):
    return run_sweeps(
        CAMPAIGNS, _configs(), workers=workers, checkpoint_dir=checkpoint_dir
    )


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("regress") / "baseline")
    store = BaselineStore(directory)
    store.accept(_sweep())
    return directory


class TestEmptyDiffAcrossWorkerCounts:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_identical_sweep_diffs_empty(self, baseline, workers):
        store = BaselineStore(baseline)
        report = build_report(store, _sweep(workers=workers), _configs())
        assert report.clean
        assert report.exit_code == 0
        assert report.totals == {kind: {} for kind in CAMPAIGNS}
        for kind in CAMPAIGNS:
            digests = report.digests[kind]
            assert digests["baseline"] == digests["current"]


class TestPerturbationDrift:
    def test_single_cell_perturbation_reports_one_entry(self, baseline):
        store = BaselineStore(baseline)
        report = build_report(
            store, _sweep(), _configs(), perturb="invoke"
        )
        assert report.exit_code == 2
        assert len(report.entries) == 1
        entry = report.entries[0]
        assert entry.campaign == "invoke"
        assert entry.drift.value == "new-failure"
        drilldown = report.drilldowns[(entry.campaign, entry.cell)]
        assert drilldown.trace_id and drilldown.server_span
        assert drilldown.spans or drilldown.exchanges

    def test_drift_report_is_worker_count_independent(self, baseline):
        store = BaselineStore(baseline)
        serial = build_report(store, _sweep(), _configs(), perturb="invoke")
        pooled = build_report(
            store, _sweep(workers=2), _configs(), perturb="invoke"
        )
        assert regress_to_json(serial) == regress_to_json(pooled)


pytestmark_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="kill/resume suite relies on the fork start method",
)


def _run_until_killed(checkpoint_dir):
    # New session so the kill takes out the supervisor AND its forked
    # workers; an orphaned worker would otherwise keep the
    # multiprocessing resource-tracker pipe open and hang pytest's exit.
    os.setsid()
    # Pooled, like the resume: the sharded checkpoint fingerprint
    # differs from the serial one, so both legs must use the pool.
    _sweep(workers=2, checkpoint_dir=checkpoint_dir)


@pytestmark_fork
class TestKillResume:
    def test_sigkill_mid_regress_resumes_to_identical_report(
        self, tmp_path, baseline
    ):
        checkpoint_dir = tmp_path / "ck"
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=_run_until_killed, args=(str(checkpoint_dir),)
        )
        child.start()
        # Wait until at least one campaign slice is checkpointed (any
        # per-kind subdirectory), then kill the sweep the hard way.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            done = []
            if checkpoint_dir.is_dir():
                for kind in CAMPAIGNS:
                    subdir = checkpoint_dir / kind
                    if not subdir.is_dir():
                        continue
                    done.extend(
                        name for name in os.listdir(subdir)
                        if name.endswith(".json") and name != "manifest.json"
                    )
            if done:
                break
            time.sleep(0.05)
        else:
            child.terminate()
            pytest.fail("no campaign checkpoint appeared before the deadline")
        os.killpg(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        # Resume the interrupted sweep from its per-campaign
        # checkpoints and diff; the report must match an uninterrupted
        # sweep's byte-for-byte (clean here, so also digest-equal).
        store = BaselineStore(baseline)
        resumed = build_report(
            store,
            _sweep(workers=2, checkpoint_dir=str(checkpoint_dir)),
            _configs(),
        )
        uninterrupted = build_report(store, _sweep(), _configs())
        assert resumed.clean
        assert regress_to_json(resumed) == regress_to_json(uninterrupted)
        # And the canonical JSON is bit-stable under a JSON round trip.
        assert json.loads(regress_to_json(resumed)) == resumed.to_obj()
