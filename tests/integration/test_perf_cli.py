"""End-to-end coverage of the ``wsinterop perf`` family and telemetry.

The acceptance contract: two same-seed recordings diff clean (exit 0)
at any worker count, an injected 10x stage slowdown is flagged (exit
2), a SIGKILLed recorder never corrupts the entries already in the
ledger, and the ``--progress`` stream validates against its schema
while leaving the canonical matrices byte-identical.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.obs.trace as trace_mod
from repro.cli import main
from repro.obs import PerfLedger
from repro.runtime.progress import read_progress, validate_progress_lines

_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Cheapest real sweep for recording: one service per server.
RECORD = ["perf", "record", "--campaign", "invoke", "--quick",
          "--seed", "7", "--sample", "1"]


def _record(ledger_dir, recorded_at, workers=1, extra=()):
    args = RECORD + ["--ledger-dir", ledger_dir,
                     "--recorded-at", recorded_at,
                     "--workers", str(workers)] + list(extra)
    return main(args)


class TestSameSeedZeroDrift:
    @pytest.mark.parametrize(
        "workers", [1, 2, 4] if _FORK else [1]
    )
    def test_identical_runs_diff_clean(self, tmp_path, capsys, workers):
        ledger_dir = str(tmp_path / "ledger")
        assert _record(ledger_dir, "t0", workers=workers) == 0
        assert _record(ledger_dir, "t1", workers=workers) == 0
        rc = main(["perf", "diff", "latest~1", "latest",
                   "--ledger-dir", ledger_dir])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "no significant" in out


class TestInjectedSlowdown:
    def test_ten_x_stage_slowdown_flags_exit_2(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "ledger")
        assert _record(ledger_dir, "t0") == 0
        trace_mod.duration_scale_hook = (
            lambda name: 10.0 if name == "wsdl-read" else 1.0
        )
        try:
            assert _record(ledger_dir, "t1") == 0
        finally:
            trace_mod.duration_scale_hook = None
        json_path = tmp_path / "diff.json"
        rc = main(["perf", "diff", "latest~1", "latest",
                   "--ledger-dir", ledger_dir, "--json", str(json_path)])
        assert rc == 2
        out = capsys.readouterr().out
        assert "regression" in out and "wsdl-read" in out
        diff = json.loads(json_path.read_text(encoding="utf-8"))
        assert diff["significant"] is True
        flagged = [s for s in diff["stages"]
                   if s["verdict"] == "regression"]
        assert [s["stage"] for s in flagged] == ["wsdl-read"]

    def test_hook_never_perturbs_the_recorded_identity(self, tmp_path):
        """The slowdown lives in annotations only: same trace_id, same
        span count — the hook cannot touch what fingerprints cover."""
        ledger_dir = str(tmp_path / "ledger")
        assert _record(ledger_dir, "t0") == 0
        trace_mod.duration_scale_hook = lambda name: 10.0
        try:
            assert _record(ledger_dir, "t1") == 0
        finally:
            trace_mod.duration_scale_hook = None
        entries, _ = PerfLedger(ledger_dir).entries()
        assert entries[0]["trace_id"] == entries[1]["trace_id"]
        assert (entries[0]["summary"]["spans_total"]
                == entries[1]["summary"]["spans_total"])


class TestLedgerDurability:
    def test_torn_trailing_line_skipped_with_count(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "ledger")
        assert _record(ledger_dir, "t0") == 0
        assert _record(ledger_dir, "t1") == 0
        ledger = PerfLedger(ledger_dir)
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "invoke", "digest": "cafe')
        rc = main(["perf", "trend", "--ledger-dir", ledger_dir])
        captured = capsys.readouterr()
        assert rc == 0
        assert "1 unreadable ledger line(s) skipped" in captured.err
        assert "2 recorded run(s)" in captured.out
        # And the intact entries still diff.
        assert main(["perf", "diff", "latest~1", "latest",
                     "--ledger-dir", ledger_dir]) == 0

    def test_sigkill_mid_record_leaves_prior_entries_readable(
        self, tmp_path
    ):
        ledger_dir = str(tmp_path / "ledger")
        assert _record(ledger_dir, "t0") == 0
        before, _ = PerfLedger(ledger_dir).entries()
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli"] + RECORD
            + ["--ledger-dir", ledger_dir, "--recorded-at", "t1"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        time.sleep(0.3)  # mid-sweep, before the ledger append
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        entries, skipped = PerfLedger(ledger_dir).entries()
        assert [e["digest"] for e in entries] >= [
            e["digest"] for e in before
        ]
        # Whatever the kill left behind, the survivors stay loadable.
        ledger = PerfLedger(ledger_dir)
        for entry in before:
            assert ledger.load_profile(entry)["kind"] == "invoke"


@pytest.mark.skipif(not _FORK, reason="pooled sweeps require fork")
class TestProgressStream:
    def test_pooled_record_emits_valid_stream(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "ledger")
        progress_path = str(tmp_path / "progress.jsonl")
        assert _record(ledger_dir, "t0", workers=2,
                       extra=["--progress", progress_path]) == 0
        capsys.readouterr()
        lines = open(progress_path, encoding="utf-8").readlines()
        assert validate_progress_lines(lines) >= 2
        stream = read_progress(progress_path)
        assert stream["meta"]["campaign"] == "invoke"
        assert stream["meta"]["workers"] == 2
        assert stream["final"]["outcome"] == "completed"
        assert stream["final"]["done"] == stream["final"]["total"]

    def test_eta_prior_comes_from_the_ledger(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "ledger")
        assert _record(ledger_dir, "t0") == 0
        progress_path = str(tmp_path / "progress.jsonl")
        assert _record(ledger_dir, "t1", workers=2,
                       extra=["--progress", progress_path,
                              "--perf-ledger", ledger_dir]) == 0
        capsys.readouterr()
        stream = read_progress(progress_path)
        # The meta line fires before any unit completes, so its ETA can
        # only come from the recorded history.
        assert stream["meta"]["eta_seconds"] is not None

    def test_serial_progress_prints_note(self, tmp_path, capsys):
        ledger_dir = str(tmp_path / "ledger")
        progress_path = str(tmp_path / "progress.jsonl")
        assert _record(ledger_dir, "t0", workers=1,
                       extra=["--progress", progress_path]) == 0
        assert "--workers 2 or more" in capsys.readouterr().err
        assert not os.path.exists(progress_path)


class TestProfileEdgeCases:
    def test_missing_trace_exits_2_with_clear_message(self, tmp_path,
                                                      capsys):
        rc = main(["profile", str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert rc == 2
        assert "no trace found" in captured.err
        assert "--trace-dir" in captured.err
        assert "Traceback" not in captured.err

    def test_empty_trace_dir_exits_2(self, tmp_path, capsys):
        rc = main(["profile", str(tmp_path)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_zero_span_trace_renders_explicit_report(self, tmp_path,
                                                     capsys):
        trace_path = tmp_path / "trace.jsonl"
        meta = {"type": "meta", "format": 1, "trace_id": "t" * 16,
                "campaign": "run", "workers": 1, "created": 0.0}
        trace_path.write_text(json.dumps(meta) + "\n", encoding="utf-8")
        rc = main(["profile", str(trace_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no spans recorded" in out


class TestRegressAdvisory:
    def test_advisory_never_changes_the_exit_code(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline")
        ledger_dir = str(tmp_path / "ledger")
        gate = ["regress", "--quick", "--campaigns", "invoke",
                "--seed", "7", "--sample", "1",
                "--baseline-dir", baseline]
        assert main(gate + ["--accept"]) == 0
        # One recording: too few to compare, advisory says so, exit 0.
        assert _record(ledger_dir, "t0") == 0
        capsys.readouterr()
        rc = main(gate + ["--perf-ledger", ledger_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "timing advisory" in out
        assert "need 2 to compare" in out
        # A second recording with a huge injected slowdown: the advisory
        # reports drift, the gate still exits 0.
        trace_mod.duration_scale_hook = (
            lambda name: 10.0 if name == "wsdl-read" else 1.0
        )
        try:
            assert _record(ledger_dir, "t1") == 0
        finally:
            trace_mod.duration_scale_hook = None
        capsys.readouterr()
        rc = main(gate + ["--perf-ledger", ledger_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TIMING DRIFT" in out
        assert "wsdl-read" in out
