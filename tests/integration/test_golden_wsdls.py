"""Golden-file tests: the emitted WSDL text is pinned byte-for-byte.

Any change to the emission pipeline (builders, serializer, framework
quirks) that alters the published documents shows up here first.  The
snapshots live in ``tests/data/golden`` and were generated from the
calibrated catalogs; regenerate them deliberately if an emission change
is intended (see the module-level script in the repo history).
"""

import os

import pytest

from repro.appservers import GlassFish, IisExpress, JBossAs
from repro.services import ServiceDefinition
from repro.wsdl import read_wsdl_text

_GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "data", "golden")

_CASES = [
    ("metro_date", GlassFish, "java", "java.util.Date"),
    ("metro_w3cepr", GlassFish, "java",
     "javax.xml.ws.wsaddressing.W3CEndpointReference"),
    ("metro_sdf", GlassFish, "java", "java.text.SimpleDateFormat"),
    ("jbossws_future", JBossAs, "java", "java.util.concurrent.Future"),
    ("jbossws_w3cepr", JBossAs, "java",
     "javax.xml.ws.wsaddressing.W3CEndpointReference"),
    ("wcf_dataset", IisExpress, "dotnet", "System.Data.DataSet"),
    ("wcf_socketerror", IisExpress, "dotnet", "System.Net.Sockets.SocketError"),
]


def _golden(name):
    with open(os.path.join(_GOLDEN_DIR, f"{name}.wsdl"), encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize("name,container_class,catalog_key,type_name", _CASES)
def test_emitted_wsdl_matches_golden(
    name, container_class, catalog_key, type_name, java_catalog, dotnet_catalog
):
    catalog = java_catalog if catalog_key == "java" else dotnet_catalog
    record = container_class().deploy(ServiceDefinition(catalog.require(type_name)))
    assert record.accepted, record.reason
    assert record.wsdl_text == _golden(name)


@pytest.mark.parametrize("name,container_class,catalog_key,type_name", _CASES)
def test_golden_files_parse(name, container_class, catalog_key, type_name):
    document = read_wsdl_text(_golden(name))
    assert document.target_namespace
