"""Integration tests for the full 5-step lifecycle across frameworks."""

import pytest

from repro.appservers import GlassFish, IisExpress, JBossAs
from repro.core.outcomes import StepStatus
from repro.frameworks.registry import all_client_frameworks
from repro.runtime import InMemoryHttpTransport, run_full_lifecycle
from repro.services import ServiceDefinition
from repro.typesystem import Language, Property, SimpleType, TypeInfo


def _record(container, language, namespace="pkg"):
    entry = TypeInfo(
        language, namespace, "Plain",
        properties=(
            Property("size", SimpleType.INT),
            Property("label", SimpleType.STRING),
        ),
    )
    record = container.deploy(ServiceDefinition(entry))
    assert record.accepted
    return record


@pytest.fixture(scope="module")
def java_record():
    return _record(GlassFish(), Language.JAVA)


@pytest.fixture(scope="module")
def jboss_record():
    return _record(JBossAs(), Language.JAVA)


@pytest.fixture(scope="module")
def dotnet_record():
    return _record(IisExpress(), Language.CSHARP, "System")


class TestCrossPlatformMatrix:
    """Every client framework can drive a clean service on every server —
    the baseline the paper's motivation assumes and the failures break."""

    @pytest.mark.parametrize("client_id", sorted(all_client_frameworks()))
    def test_glassfish_interop(self, java_record, client_id):
        client = all_client_frameworks()[client_id]
        outcome = run_full_lifecycle(java_record, client, client_id=client_id)
        assert outcome.reached_execution, outcome.detail

    @pytest.mark.parametrize("client_id", sorted(all_client_frameworks()))
    def test_jboss_interop(self, jboss_record, client_id):
        client = all_client_frameworks()[client_id]
        outcome = run_full_lifecycle(jboss_record, client, client_id=client_id)
        assert outcome.reached_execution, outcome.detail

    @pytest.mark.parametrize("client_id", sorted(all_client_frameworks()))
    def test_iis_interop(self, dotnet_record, client_id):
        client = all_client_frameworks()[client_id]
        outcome = run_full_lifecycle(dotnet_record, client, client_id=client_id)
        assert outcome.reached_execution, outcome.detail


class TestSharedTransport:
    def test_multiple_endpoints_coexist(self, java_record, dotnet_record):
        transport = InMemoryHttpTransport()
        clients = all_client_frameworks()
        first = run_full_lifecycle(
            java_record, clients["suds"], client_id="suds", transport=transport
        )
        second = run_full_lifecycle(
            dotnet_record, clients["zend"], client_id="zend", transport=transport
        )
        assert first.execution is StepStatus.OK
        assert second.execution is StepStatus.OK
        assert transport.requests_sent == 2

    def test_custom_payload_echoed(self, java_record):
        clients = all_client_frameworks()
        outcome = run_full_lifecycle(
            java_record,
            clients["metro"],
            client_id="metro",
            values={"size": "123", "label": "hello world"},
        )
        assert outcome.execution is StepStatus.OK
