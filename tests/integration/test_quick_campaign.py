"""Integration tests over the scaled-down (quick) campaign.

The quick corpora keep every named special type and one representative
of every failure class, so the same behaviours must show up — just with
smaller populations.
"""

from repro.core.analysis import (
    error_free_wsi_warned_services,
    headline_numbers,
    same_framework_error_tests,
)
from repro.core.outcomes import StepStatus
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS


class TestPopulations:
    def test_tests_executed(self, quick_campaign_result):
        deployed = quick_campaign_result.services_deployed
        assert quick_campaign_result.tests_executed == deployed * 11

    def test_deployed_counts_match_quotas(self, quick_campaign_result):
        servers = quick_campaign_result.servers
        assert servers["metro"].deployed == QUICK_JAVA_QUOTAS.metro_bindable
        assert servers["jbossws"].deployed == QUICK_JAVA_QUOTAS.jbossws_bindable
        assert servers["wcf"].deployed == QUICK_DOTNET_QUOTAS.wcf_bindable

    def test_sdg_warning_counts(self, quick_campaign_result):
        servers = quick_campaign_result.servers
        assert servers["metro"].sdg_warnings == 2  # EPR + SimpleDateFormat
        assert servers["jbossws"].sdg_warnings == 4  # + the two async handles
        assert servers["wcf"].sdg_warnings == QUICK_DOTNET_QUOTAS.wsi_failing


class TestQuirkCounts:
    def test_axis1_throwable_failures(self, quick_campaign_result):
        metro_cell = quick_campaign_result.cell("metro", "axis1")
        jboss_cell = quick_campaign_result.cell("jbossws", "axis1")
        assert metro_cell.comp_error_tests == QUICK_JAVA_QUOTAS.throwable_metro
        assert jboss_cell.comp_error_tests == QUICK_JAVA_QUOTAS.throwable_jbossws

    def test_axis_compile_warnings_cover_all_deployed(self, quick_campaign_result):
        for server_id in ("metro", "jbossws", "wcf"):
            deployed = quick_campaign_result.servers[server_id].deployed
            for client_id in ("axis1", "axis2"):
                cell = quick_campaign_result.cell(server_id, client_id)
                assert cell.comp_warning_tests == deployed

    def test_jscript_warns_on_every_java_test(self, quick_campaign_result):
        for server_id in ("metro", "jbossws"):
            cell = quick_campaign_result.cell(server_id, "dotnet-js")
            assert cell.gen_warning_tests == quick_campaign_result.servers[server_id].deployed

    def test_jscript_compile_failures(self, quick_campaign_result):
        assert (
            quick_campaign_result.cell("metro", "dotnet-js").comp_error_tests
            == QUICK_JAVA_QUOTAS.script_unfriendly
        )
        assert (
            quick_campaign_result.cell("wcf", "dotnet-js").comp_error_tests
            == QUICK_DOTNET_QUOTAS.script_unfriendly
        )

    def test_gsoap_errors_on_keyref_pool(self, quick_campaign_result):
        cell = quick_campaign_result.cell("wcf", "gsoap")
        assert cell.gen_error_tests == QUICK_DOTNET_QUOTAS.schema_keyref

    def test_suds_single_recursive_failure(self, quick_campaign_result):
        cell = quick_campaign_result.cell("wcf", "suds")
        assert cell.gen_error_tests == QUICK_DOTNET_QUOTAS.recursive_schema_ref

    def test_jaxb_family_errors_on_dataset_pool(self, quick_campaign_result):
        expected = QUICK_DOTNET_QUOTAS.dataset_schema_ref + 3  # + xs:any trio
        for client_id in ("metro", "cxf", "jbossws"):
            cell = quick_campaign_result.cell("wcf", client_id)
            assert cell.gen_error_tests == expected

    def test_vb_case_collisions(self, quick_campaign_result):
        assert quick_campaign_result.cell("metro", "dotnet-vb").comp_error_tests == 1
        assert quick_campaign_result.cell("jbossws", "dotnet-vb").comp_error_tests == 1
        assert (
            quick_campaign_result.cell("wcf", "dotnet-vb").comp_error_tests
            == QUICK_DOTNET_QUOTAS.vb_case_collisions
        )

    def test_zend_never_errors(self, quick_campaign_result):
        for server_id in ("metro", "jbossws", "wcf"):
            cell = quick_campaign_result.cell(server_id, "zend")
            assert cell.gen_error_tests == 0
            assert cell.comp_error_tests == 0


class TestInvariants:
    def test_error_in_generation_suppresses_compilation_except_axis(
        self, quick_campaign_result
    ):
        for record in quick_campaign_result.records:
            if record.generation.status is StepStatus.ERROR:
                if record.client_id in ("axis1", "axis2"):
                    assert record.compilation.status in (
                        StepStatus.WARNING, StepStatus.OK, StepStatus.ERROR,
                    )
                elif record.client_id in ("zend", "suds"):
                    assert record.compilation.status is StepStatus.NOT_APPLICABLE
                else:
                    assert record.compilation.status is StepStatus.SKIPPED

    def test_dynamic_clients_never_compile(self, quick_campaign_result):
        for record in quick_campaign_result.records:
            if record.client_id in ("zend", "suds"):
                assert record.compilation.status is StepStatus.NOT_APPLICABLE

    def test_partial_compiles_never_error(self, quick_campaign_result):
        """The Axis wrapper script compiles partial output with at most
        warnings — errors would double-count a single failing test."""
        for record in quick_campaign_result.records:
            if (
                record.client_id in ("axis1", "axis2")
                and record.generation.status is StepStatus.ERROR
            ):
                assert record.compilation.status is not StepStatus.ERROR

    def test_same_framework_errors_positive(self, quick_campaign_result):
        assert same_framework_error_tests(quick_campaign_result) > 0

    def test_wsi_survivors_are_the_lang_pool(self, quick_campaign_result):
        survivors = error_free_wsi_warned_services(quick_campaign_result)
        assert len(survivors) == QUICK_DOTNET_QUOTAS.xml_lang_attr
        assert all(server_id == "wcf" for server_id, __ in survivors)

    def test_headlines_computable(self, quick_campaign_result):
        headlines = headline_numbers(quick_campaign_result)
        assert 0.0 <= headlines["wsi_predictive_ratio"] <= 1.0

    def test_deterministic_rerun(self, quick_campaign_result):
        from repro.core import Campaign, CampaignConfig
        from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

        again = Campaign(
            CampaignConfig(
                java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
            )
        ).run()
        assert again.totals() == quick_campaign_result.totals()
        for key, cell in again.cells.items():
            assert cell.as_row() == quick_campaign_result.cells[key].as_row()
