"""Traces must be deterministic and must never touch campaign payloads.

The tracing contract has two halves.  Identity: span IDs, parent edges
and emission order are pure functions of the campaign's logical
coordinates, so serial and any ``--workers N`` execution produce the
same trace.  Isolation: timing lives only in trace artifacts — a traced
run's campaign payload is byte-identical to an untraced one.
"""

import json
import multiprocessing

import pytest

from repro.cli import main
from repro.core import Campaign, CampaignConfig
from repro.core.store import result_to_obj
from repro.faults import (
    FuzzCampaign,
    FuzzCampaignConfig,
    MutationKind,
    ResilienceCampaign,
    ResilienceCampaignConfig,
    fuzz_result_to_obj,
    resilience_result_to_obj,
)
from repro.obs import TraceCollector, Tracer, activate, load_trace, trace_id_for
from repro.runtime.pool import PoolConfig, execute_sharded
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="trace determinism suite relies on the fork start method",
)


def _quick_config():
    return CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
    )


def _shape(events):
    """The identity of a trace: IDs, parent edges and order."""
    return [(event["id"], event["parent"], event["name"]) for event in events]


def _counters(metrics):
    """Integer counters only — float sums are not merge-order stable."""
    return dict(metrics.counters)


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def serial_traced(self):
        config = _quick_config()
        trace_id = trace_id_for("run", Campaign(config)._fingerprint())
        tracer = Tracer(trace_id)
        with activate(tracer):
            result = Campaign(config).run()
        tracer.emit_root()
        return trace_id, tracer, result

    def test_payload_identical_with_tracing_on_and_off(
        self, serial_traced, quick_campaign_result
    ):
        _, _, traced_result = serial_traced
        assert result_to_obj(traced_result) == result_to_obj(
            quick_campaign_result
        )

    def test_span_set_identical_for_workers_1_2_4(self, serial_traced):
        trace_id, tracer, _ = serial_traced
        serial_shape = _shape(tracer.events)
        job = Campaign(_quick_config()).shard_job()
        for workers in (1, 2, 4):
            collector = TraceCollector(trace_id)
            execute_sharded(
                job, PoolConfig(workers=workers), collector=collector
            )
            assert _shape(collector.events) == serial_shape, (
                f"trace diverged at --workers {workers}"
            )
            assert _counters(collector.metrics) == _counters(tracer.metrics)

    def test_worker_timeline_rides_on_the_collector(self, serial_traced):
        trace_id, _, _ = serial_traced
        collector = TraceCollector(trace_id)
        execute_sharded(
            Campaign(_quick_config()).shard_job(), PoolConfig(workers=2),
            collector=collector,
        )
        assert len(collector.worker_events) == 2
        for row in collector.worker_events:
            assert row["type"] == "worker"
            assert row["outcome"] == "retired"
            assert 0.0 <= row["busy_pct"] <= 100.0


class TestFaultCampaigns:
    def test_resilience_trace_identical_parallel_vs_serial(self):
        config = ResilienceCampaignConfig(
            base=_quick_config(), sample_per_server=2
        )
        trace_id = trace_id_for("resilience", config.fingerprint())
        tracer = Tracer(trace_id)
        with activate(tracer):
            serial_result = ResilienceCampaign(config).run()
        tracer.emit_root()

        collector = TraceCollector(trace_id)
        result, _ = execute_sharded(
            ResilienceCampaign(config).shard_job(), PoolConfig(workers=3),
            collector=collector,
        )
        assert _shape(collector.events) == _shape(tracer.events)
        assert resilience_result_to_obj(result) == resilience_result_to_obj(
            serial_result
        )

    def test_fuzz_trace_identical_parallel_vs_serial(self):
        config = FuzzCampaignConfig(
            base=_quick_config(),
            mutation_kinds=(
                MutationKind.TRUNCATION, MutationKind.TAG_IMBALANCE
            ),
            intensities=(0.8,),
            sample_per_server=2,
        )
        trace_id = trace_id_for("fuzz", config.fingerprint())
        tracer = Tracer(trace_id)
        with activate(tracer):
            serial_result = FuzzCampaign(config).run()
        tracer.emit_root()

        collector = TraceCollector(trace_id)
        result, _ = execute_sharded(
            FuzzCampaign(config).shard_job(), PoolConfig(workers=3),
            collector=collector,
        )
        assert _shape(collector.events) == _shape(tracer.events)
        assert fuzz_result_to_obj(result) == fuzz_result_to_obj(serial_result)


class TestCli:
    def test_trace_dir_flag_and_profile_command(self, tmp_path, capsys):
        serial_save = tmp_path / "serial.json"
        pool_save = tmp_path / "pool.json"
        untraced_save = tmp_path / "untraced.json"
        serial_dir = tmp_path / "serial-trace"
        pool_dir = tmp_path / "pool-trace"

        assert main(["run", "--quick", "--save", str(untraced_save)]) == 0
        assert main([
            "run", "--quick", "--save", str(serial_save),
            "--trace-dir", str(serial_dir),
        ]) == 0
        assert main([
            "run", "--quick", "--workers", "2", "--save", str(pool_save),
            "--trace-dir", str(pool_dir),
        ]) == 0
        capsys.readouterr()

        # tracing must not perturb the campaign payload, serial or pooled
        assert serial_save.read_bytes() == untraced_save.read_bytes()
        assert pool_save.read_bytes() == untraced_save.read_bytes()

        serial_trace = load_trace(serial_dir / "trace.jsonl")
        pool_trace = load_trace(pool_dir / "trace.jsonl")
        assert serial_trace["meta"]["trace_id"] == (
            pool_trace["meta"]["trace_id"]
        )
        assert _shape(serial_trace["spans"]) == _shape(pool_trace["spans"])
        assert serial_trace["workers"] == []
        assert [row["worker"] for row in pool_trace["workers"]] == [1, 2]

        assert main(["profile", str(pool_dir)]) == 0
        rendered = capsys.readouterr().out
        assert "Stage latency rollup" in rendered
        assert "slowest services" in rendered
        assert "Worker utilization" in rendered

    def test_profile_rejects_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "trace.jsonl"
        bad.write_text(json.dumps({"type": "bogus"}) + "\n")
        assert main(["profile", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err
