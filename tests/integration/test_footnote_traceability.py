"""Footnote traceability: Table III footnotes a)–h) one by one.

Each test reproduces the exact situation a paper footnote describes,
using the real catalog entries, and checks the mechanism our models
implement for it.  This is the audit trail between the published
narrative and the code.
"""

import pytest

from repro.appservers import GlassFish, IisExpress, JBossAs
from repro.frameworks.registry import all_client_frameworks
from repro.services import ServiceDefinition
from repro.typesystem import Trait
from repro.wsdl import read_wsdl_text
from repro.wsi import check_document

CLIENTS = all_client_frameworks()


def _deploy(container, catalog, type_name):
    record = container.deploy(ServiceDefinition(catalog.require(type_name)))
    assert record.accepted, record.reason
    return record, read_wsdl_text(record.wsdl_text)


class TestFootnoteA:
    """a) WSDL for the service based on W3CEndpointReference fails the
    WS-I check (GlassFish/Metro)."""

    def test_fails_wsi_and_breaks_strict_tools(self, java_catalog):
        __, document = _deploy(
            GlassFish(), java_catalog,
            "javax.xml.ws.wsaddressing.W3CEndpointReference",
        )
        assert not check_document(document).conformant
        for client_id in ("metro", "axis1", "axis2", "cxf", "jbossws",
                          "dotnet-cs", "dotnet-vb", "dotnet-js", "suds"):
            assert not CLIENTS[client_id].generate(document).succeeded, client_id
        for client_id in ("gsoap", "zend"):
            assert CLIENTS[client_id].generate(document).succeeded, client_id


class TestFootnoteB:
    """b) WSDL for the service based on SimpleDateFormat fails the WS-I
    check; only the .NET languages and gSOAP reject it."""

    def test_fails_wsi_with_duplicate_attribute(self, java_catalog):
        __, document = _deploy(GlassFish(), java_catalog, "java.text.SimpleDateFormat")
        report = check_document(document)
        assert any(v.assertion_id == "BP2120" for v in report.failures)

    def test_rejecting_tools(self, java_catalog):
        __, document = _deploy(GlassFish(), java_catalog, "java.text.SimpleDateFormat")
        for client_id in ("dotnet-cs", "dotnet-vb", "dotnet-js", "gsoap"):
            assert not CLIENTS[client_id].generate(document).succeeded, client_id
        for client_id in ("metro", "axis1", "cxf", "jbossws", "zend", "suds"):
            assert CLIENTS[client_id].generate(document).succeeded, client_id


class TestFootnoteC:
    """c) Services based on Future and Response are WS-I compliant but
    do not provide operations that can be invoked (JBoss AS)."""

    @pytest.mark.parametrize(
        "type_name", ["java.util.concurrent.Future", "javax.xml.ws.Response"]
    )
    def test_compliant_but_unusable(self, java_catalog, type_name):
        __, document = _deploy(JBossAs(), java_catalog, type_name)
        report = check_document(document)
        assert report.conformant  # passes WS-I...
        assert document.operations == []  # ...but nothing to invoke
        # "unusable by Metro, Axis2, .NET (C#, VB, JScript) and gSOAP"
        for client_id in ("metro", "axis2", "dotnet-cs", "dotnet-vb",
                          "dotnet-js", "gsoap"):
            assert not CLIENTS[client_id].generate(document).succeeded, client_id
        # "Axis1, Apache CXF and JBossWS did not signal any problem"
        for client_id in ("axis1", "cxf", "jbossws"):
            result = CLIENTS[client_id].generate(document)
            assert result.succeeded and not result.warnings, client_id
        # "Zend and Suds generated client objects without methods"
        for client_id in ("zend", "suds"):
            result = CLIENTS[client_id].generate(document)
            assert result.succeeded
            assert any(d.code == "empty-client" for d in result.warnings), client_id

    def test_glassfish_refused_these_services(self, java_catalog):
        for type_name in ("java.util.concurrent.Future", "javax.xml.ws.Response"):
            record = GlassFish().deploy(
                ServiceDefinition(java_catalog.require(type_name))
            )
            assert not record.accepted


class TestFootnotesDE:
    """d)/e) The same two classes fail the WS-I check on JBossWS too
    (with different pathologies than Metro's)."""

    def test_jboss_epr_variant_differs_from_metro(self, java_catalog):
        __, metro_doc = _deploy(
            GlassFish(), java_catalog,
            "javax.xml.ws.wsaddressing.W3CEndpointReference",
        )
        __, jboss_doc = _deploy(
            JBossAs(), java_catalog,
            "javax.xml.ws.wsaddressing.W3CEndpointReference",
        )
        metro_ids = {v.assertion_id for v in check_document(metro_doc).failures}
        jboss_ids = {v.assertion_id for v in check_document(jboss_doc).failures}
        assert metro_ids == {"BP2104"}  # import without location
        assert jboss_ids == {"BP2105"}  # dangling reference

    def test_axis2_tolerates_only_the_jboss_variant(self, java_catalog):
        __, metro_doc = _deploy(
            GlassFish(), java_catalog,
            "javax.xml.ws.wsaddressing.W3CEndpointReference",
        )
        __, jboss_doc = _deploy(
            JBossAs(), java_catalog,
            "javax.xml.ws.wsaddressing.W3CEndpointReference",
        )
        assert not CLIENTS["axis2"].generate(metro_doc).succeeded
        assert CLIENTS["axis2"].generate(jboss_doc).succeeded

    def test_gsoap_tolerates_the_jboss_sdf_variant(self, java_catalog):
        __, document = _deploy(JBossAs(), java_catalog, "java.text.SimpleDateFormat")
        assert CLIENTS["gsoap"].generate(document).succeeded
        assert not CLIENTS["dotnet-cs"].generate(document).succeeded


class TestFootnoteF:
    """f) 80 .NET services fail the WS-I check; 76 break the JAXB tools
    at generation (the s:schema idiom), and suds struggles with one."""

    def test_population_and_mechanism(self, dotnet_catalog):
        dsref = dotnet_catalog.with_trait(Trait.DATASET_SCHEMA_REF)
        lang = dotnet_catalog.with_trait(Trait.XML_LANG_ATTR)
        assert len(dsref) + len(lang) == 80
        assert len(dsref) == 76

    def test_sample_breaks_jaxb_tools(self, dotnet_catalog):
        entry = dotnet_catalog.with_trait(Trait.DATASET_SCHEMA_REF)[5]
        __, document = _deploy(IisExpress(), dotnet_catalog, entry.full_name)
        for client_id in ("metro", "cxf", "jbossws"):
            result = CLIENTS[client_id].generate(document)
            assert not result.succeeded
            assert "s:schema" in result.errors[0].message, client_id
        assert CLIENTS["dotnet-cs"].generate(document).succeeded

    def test_binding_customization_would_fix_it(self, dotnet_catalog):
        """§IV.B.2: the errors 'can be solved by using manual
        customization of the data type bindings' — i.e. resolving the
        reference.  Simulate the fix: replace the s:schema ref with an
        anyType element and the JAXB tools accept the document."""
        from repro.xmlcore import QName, XSD_NS
        from repro.xsd import ElementParticle, RefParticle

        entry = dotnet_catalog.with_trait(Trait.DATASET_SCHEMA_REF)[6]
        __, document = _deploy(IisExpress(), dotnet_catalog, entry.full_name)
        for schema in document.schemas:
            for ctype in schema.all_complex_types():
                ctype.particles = [
                    ElementParticle("schemaContent", QName(XSD_NS, "anyType"))
                    if isinstance(p, RefParticle) and p.ref.namespace == XSD_NS
                    else p
                    for p in ctype.particles
                ]
        assert CLIENTS["metro"].generate(document).succeeded

    def test_xml_lang_pool_is_harmless(self, dotnet_catalog):
        entry = dotnet_catalog.with_trait(Trait.XML_LANG_ATTR)[0]
        __, document = _deploy(IisExpress(), dotnet_catalog, entry.full_name)
        assert not check_document(document).conformant
        for client in CLIENTS.values():
            result = client.generate(document)
            assert result.succeeded
            if client.requires_compilation:
                assert client.compiler.compile(result.bundle).succeeded


class TestFootnoteG:
    """g) WS-I-compliant services based on DataTable/DataTableCollection
    still break tools — the s:any idiom."""

    @pytest.mark.parametrize(
        "type_name",
        ["System.Data.DataTable", "System.Data.DataTableCollection"],
    )
    def test_compliant_but_breaking(self, dotnet_catalog, type_name):
        __, document = _deploy(IisExpress(), dotnet_catalog, type_name)
        assert check_document(document).conformant
        for client_id in ("metro", "cxf", "jbossws", "axis1"):
            assert not CLIENTS[client_id].generate(document).succeeded, client_id
        # Axis2 generates but the artifacts do not compile (2g).
        axis2 = CLIENTS["axis2"]
        result = axis2.generate(document)
        assert result.succeeded
        assert not axis2.compiler.compile(result.bundle).succeeded


class TestFootnoteH:
    """h) WS-I compliant service based on SocketError: Axis2's enum
    normalization produces duplicate constants."""

    def test_socket_error_mechanism(self, dotnet_catalog):
        __, document = _deploy(
            IisExpress(), dotnet_catalog, "System.Net.Sockets.SocketError"
        )
        assert check_document(document).conformant
        axis2 = CLIENTS["axis2"]
        result = axis2.generate(document)
        compiled = axis2.compiler.compile(result.bundle)
        assert any(d.code == "duplicate-enum-constant" for d in compiled.errors)
        # Every other compiled tool is fine with it.
        for client_id in ("metro", "axis1", "cxf", "jbossws",
                          "dotnet-cs", "dotnet-vb", "dotnet-js", "gsoap"):
            client = CLIENTS[client_id]
            other = client.generate(document)
            assert other.succeeded, client_id
            assert client.compiler.compile(other.bundle).succeeded, client_id
