"""The headline reproduction test: full campaign vs the paper's numbers.

This is the paper-scale run — 22,024 services, 7,239 WSDLs, 79,629
tests — compared cell by cell against the reconstructed Table III and
Fig. 4 (see repro.data.paper_results for the reconstruction notes).
"""

import pytest

from repro.core.analysis import (
    error_free_wsi_warned_services,
    headline_numbers,
    wsi_predictive_power,
)
from repro.data import PAPER_FIG4, PAPER_HEADLINES, PAPER_TABLE3


class TestCorpusScale:
    def test_services_created(self, full_campaign_result):
        assert full_campaign_result.services_created == 22024

    def test_services_deployed_per_server(self, full_campaign_result):
        servers = full_campaign_result.servers
        assert servers["metro"].deployed == 2489
        assert servers["jbossws"].deployed == 2248
        assert servers["wcf"].deployed == 2502

    def test_services_refused(self, full_campaign_result):
        assert full_campaign_result.services_refused == 14785

    def test_tests_executed(self, full_campaign_result):
        assert full_campaign_result.tests_executed == 79629


class TestFig4:
    @pytest.mark.parametrize("server_id", ["metro", "jbossws", "wcf"])
    def test_series_matches_reconstruction(self, full_campaign_result, server_id):
        assert full_campaign_result.fig4_series(server_id) == PAPER_FIG4[server_id]


class TestTable3:
    @pytest.mark.parametrize("server_id", ["metro", "jbossws", "wcf"])
    def test_all_cells_match(self, full_campaign_result, server_id):
        for client_id, expected in PAPER_TABLE3[server_id].items():
            cell = full_campaign_result.cell(server_id, client_id)
            expected = tuple(0 if value is None else value for value in expected)
            assert cell.as_row() == expected, (server_id, client_id)


class TestHeadlines:
    def test_wsi_warned_services(self, full_campaign_result):
        assert full_campaign_result.wsi_warned_services == 86

    def test_compilation_totals_exact(self, full_campaign_result):
        totals = full_campaign_result.totals()
        assert totals["comp_warning_tests"] == PAPER_HEADLINES["comp_warning_tests"]
        assert totals["comp_error_tests"] == PAPER_HEADLINES["comp_error_tests"]

    def test_same_framework_errors_exact(self, full_campaign_result):
        headlines = headline_numbers(full_campaign_result)
        assert (
            headlines["same_framework_error_tests"]
            == PAPER_HEADLINES["same_framework_error_tests"]
        )

    def test_wsi_predictive_power_95_3(self, full_campaign_result):
        warned, with_errors, ratio = wsi_predictive_power(full_campaign_result)
        assert warned == 86
        assert with_errors == 82
        assert round(ratio, 3) == 0.953

    def test_four_error_free_warned_services(self, full_campaign_result):
        survivors = error_free_wsi_warned_services(full_campaign_result)
        assert len(survivors) == 4
        assert all(server_id == "wcf" for server_id, __ in survivors)

    def test_error_situations_within_documented_tolerance(self, full_campaign_result):
        """§V says 1,583; the self-consistent reconstruction yields 1,591
        (documented in RECONSTRUCTION_NOTES).  Assert we are within 1%."""
        measured = full_campaign_result.totals()["error_situations"]
        paper = PAPER_HEADLINES["error_situations"]
        assert abs(measured - paper) / paper < 0.01

    def test_axis1_throwable_errors_889(self, full_campaign_result):
        total = (
            full_campaign_result.cell("metro", "axis1").comp_error_tests
            + full_campaign_result.cell("jbossws", "axis1").comp_error_tests
        )
        assert total == PAPER_HEADLINES["axis1_throwable_comp_errors"]
