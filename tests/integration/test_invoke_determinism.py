"""Invocation sweep end-to-end: scale, parallel byte-identity, kill -9.

The acceptance bar for the step-4 campaign: a seeded sweep of 300+
payloads across every server/client pair classifies every round trip
(zero unclassified), ``--workers 2`` is byte-identical to serial, and a
supervisor killed with SIGKILL mid-sweep resumes from its checkpoint to
the exact same fidelity matrix.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core import CampaignConfig
from repro.core.store import CampaignCheckpoint
from repro.invoke import InvocationCampaign, InvocationCampaignConfig
from repro.reporting import invoke_to_json
from repro.runtime.pool import PoolConfig, execute_sharded
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="kill/resume suite relies on the fork start method",
)


def _iconfig():
    return InvocationCampaignConfig(
        base=CampaignConfig(
            java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
        ),
        seed=20140622,
        sample_per_server=3,
    )


@pytest.fixture(scope="module")
def serial_json():
    return invoke_to_json(InvocationCampaign(_iconfig()).run())


class TestSweepScale:
    def test_seeded_sweep_is_total_over_300_payloads(self, serial_json):
        obj = json.loads(serial_json)
        executed = sum(
            cell["payloads"] for cell in obj["cells"].values()
        )
        assert executed >= 300
        assert all(
            cell["unclassified"] == 0 for cell in obj["cells"].values()
        )
        # Every server/client pair that passed its gate shows up.
        assert set(obj["server_ids"]) == set(obj["services_per_server"])


class TestParallelByteIdentity:
    def test_workers_2_matches_serial_bytes(self, serial_json):
        job = InvocationCampaign(_iconfig()).shard_job()
        result, stats = execute_sharded(job, PoolConfig(workers=2))
        assert invoke_to_json(result) == serial_json
        assert stats.units_completed == stats.units_total
        assert stats.contained == 0


def _run_until_killed(checkpoint_dir):
    # New session so the kill below takes out the supervisor AND its
    # forked workers; an orphaned worker would otherwise keep the
    # multiprocessing resource-tracker pipe open and hang pytest's exit.
    os.setsid()
    job = InvocationCampaign(_iconfig()).shard_job()
    execute_sharded(
        job,
        PoolConfig(workers=1),
        checkpoint=CampaignCheckpoint(checkpoint_dir),
    )


class TestKillResume:
    def test_sigkill_mid_sweep_resumes_identically(
        self, tmp_path, serial_json
    ):
        checkpoint_dir = tmp_path / "ck"
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=_run_until_killed, args=(str(checkpoint_dir),)
        )
        child.start()
        # Wait until at least one unit payload has been checkpointed,
        # then kill the supervisor the hard way.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            done = [
                name
                for name in (
                    os.listdir(checkpoint_dir)
                    if checkpoint_dir.is_dir()
                    else []
                )
                if name.endswith(".json") and name != "manifest.json"
            ]
            if done:
                break
            time.sleep(0.05)
        else:
            child.terminate()
            pytest.fail("no unit checkpoint appeared before the deadline")
        os.killpg(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        job = InvocationCampaign(_iconfig()).shard_job()
        checkpoint = CampaignCheckpoint(checkpoint_dir)
        result, stats = execute_sharded(
            job, PoolConfig(workers=2), checkpoint=checkpoint
        )
        assert stats.units_restored >= 1
        assert invoke_to_json(result) == serial_json
