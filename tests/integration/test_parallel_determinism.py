"""Parallel execution must be indistinguishable from serial.

The supervised pool's whole contract is that ``--workers N`` is an
implementation detail: any worker count, any completion order, and any
supervisor crash/resume must produce byte-identical results.  These
tests exercise that contract end to end over the full quick campaign
(all five servers, all eleven clients) and through the CLI.
"""

import json
import multiprocessing

import pytest

from repro.cli import main
from repro.core import Campaign, CampaignConfig
from repro.core.store import CampaignCheckpoint, result_to_obj
from repro.faults import (
    FuzzCampaign,
    FuzzCampaignConfig,
    MutationKind,
    ResilienceCampaign,
    ResilienceCampaignConfig,
    fuzz_result_to_obj,
    resilience_result_to_obj,
)
from repro.runtime.pool import PoolConfig, execute_sharded
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel determinism suite relies on the fork start method",
)


def _quick_config():
    return CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
    )


class TestRunCampaign:
    def test_digest_identical_for_workers_1_2_4(self, quick_campaign_result):
        serial = json.dumps(result_to_obj(quick_campaign_result), sort_keys=True)
        job = Campaign(_quick_config()).shard_job()
        for workers in (1, 2, 4):
            result, stats = execute_sharded(job, PoolConfig(workers=workers))
            parallel = json.dumps(result_to_obj(result), sort_keys=True)
            assert parallel == serial, f"diverged at --workers {workers}"
            assert stats.units_completed == stats.units_total
            assert stats.contained == 0

    def test_digest_identical_under_kill_and_resume(
        self, tmp_path, quick_campaign_result
    ):
        serial = json.dumps(result_to_obj(quick_campaign_result), sort_keys=True)
        job = Campaign(_quick_config()).shard_job()
        # First pass populates the checkpoint; dropping every other
        # payload emulates a supervisor killed mid-sweep (each unit
        # file is atomic, so a real kill leaves exactly some subset).
        checkpoint = CampaignCheckpoint(tmp_path / "ck")
        execute_sharded(job, PoolConfig(workers=4), checkpoint=checkpoint)
        for index, unit in enumerate(job.units()):
            if index % 2:
                (checkpoint.directory / f"{unit.key}.json").unlink()
        result, stats = execute_sharded(
            job, PoolConfig(workers=2), checkpoint=checkpoint
        )
        assert stats.units_restored == stats.units_total // 2
        assert json.dumps(result_to_obj(result), sort_keys=True) == serial


class TestFaultCampaigns:
    def test_resilience_parallel_matches_serial(self):
        rconfig = ResilienceCampaignConfig(
            base=_quick_config(), sample_per_server=2
        )
        serial = resilience_result_to_obj(ResilienceCampaign(rconfig).run())
        result, stats = execute_sharded(
            ResilienceCampaign(rconfig).shard_job(), PoolConfig(workers=3)
        )
        assert resilience_result_to_obj(result) == serial
        assert stats.units_completed == stats.units_total

    def test_fuzz_parallel_matches_serial(self):
        fconfig = FuzzCampaignConfig(
            base=_quick_config(),
            mutation_kinds=(MutationKind.TRUNCATION, MutationKind.TAG_IMBALANCE),
            intensities=(0.8,),
            sample_per_server=2,
        )
        serial = fuzz_result_to_obj(FuzzCampaign(fconfig).run())
        result, _ = execute_sharded(
            FuzzCampaign(fconfig).shard_job(), PoolConfig(workers=3)
        )
        assert fuzz_result_to_obj(result) == serial


class TestCli:
    def test_run_workers_flag_produces_identical_save(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["run", "--quick", "--save", str(serial_path)]) == 0
        assert main(
            ["run", "--quick", "--workers", "2", "--save", str(parallel_path)]
        ) == 0
        captured = capsys.readouterr()
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        assert "Parallel execution supervision" in captured.err
