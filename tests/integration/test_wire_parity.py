"""Wire transport end-to-end: byte parity and classified wire chaos.

The keystone guarantee of the wire transport: a sweep over real
loopback sockets canonicalizes to a matrix *byte-identical* to the
in-memory sweep — same seed, same cells, same digests — with real wall
time confined to trace artifacts.  And a sweep of socket-level
pathologies completes with every outcome classified: the lifecycle's
step taxonomy is total over the wire fault taxonomy, so no cell can
leak an unclassified escape.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.core import CampaignConfig, canon
from repro.faults import (
    DEFAULT_WIRE_FAULT_KINDS,
    FaultKind,
    ResilienceCampaign,
    ResilienceCampaignConfig,
)
from repro.invoke import (
    InvocationCampaign,
    InvocationCampaignConfig,
    PayloadClass,
)
from repro.typesystem import QUICK_DOTNET_QUOTAS, QUICK_JAVA_QUOTAS

SEED = 7


def _base(transport):
    return CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS,
        transport=transport,
    )


def _no_wire_threads():
    return not [
        thread.name for thread in threading.enumerate()
        if thread.name.startswith("wire-")
    ]


def _resilience_config(transport, kinds=(FaultKind.HTTP_503,)):
    return ResilienceCampaignConfig(
        base=_base(transport), seed=SEED, sample_per_server=1,
        fault_kinds=kinds, rates=(0.5,),
    )


def _invoke_config(transport):
    return InvocationCampaignConfig(
        base=_base(transport), seed=SEED, sample_per_server=1,
        payload_classes=(PayloadClass.BASELINE, PayloadClass.NUMERIC_BOUNDARY),
        payloads_per_class=1,
    )


class TestByteParity:
    def test_resilience_matrix_identical_across_transports(self):
        digests = {}
        for transport in ("memory", "wire"):
            config = _resilience_config(transport)
            result = ResilienceCampaign(config).run()
            digests[transport] = canon.matrix_digest(
                canon.snapshot("resilience", result, config.fingerprint())
            )
        assert digests["memory"] == digests["wire"]
        assert _no_wire_threads()

    def test_invoke_matrix_identical_across_transports(self):
        digests = {}
        for transport in ("memory", "wire"):
            config = _invoke_config(transport)
            result = InvocationCampaign(config).run()
            digests[transport] = canon.matrix_digest(
                canon.snapshot("invoke", result, config.fingerprint())
            )
        assert digests["memory"] == digests["wire"]
        assert _no_wire_threads()

    def test_fingerprint_is_transport_invariant(self):
        # A wire sweep must gate against a memory-accepted baseline:
        # the transport is deliberately absent from every fingerprint.
        assert (_resilience_config("memory").fingerprint()
                == _resilience_config("wire").fingerprint())
        assert (_invoke_config("memory").fingerprint()
                == _invoke_config("wire").fingerprint())


class TestWireFaultSweep:
    @pytest.fixture(scope="class")
    def result(self):
        config = ResilienceCampaignConfig(
            base=_base("wire"), seed=SEED, sample_per_server=1,
            fault_kinds=DEFAULT_WIRE_FAULT_KINDS, rates=(1.0,),
        )
        return ResilienceCampaign(config).run()

    def test_every_outcome_classified(self, result):
        # The lifecycle's closed step taxonomy is total: every test
        # lands in exactly one bucket, none escape unclassified.
        for key, stats in result.cells.items():
            classified = (
                stats.generation_errors + stats.compilation_errors
                + stats.communication_errors + stats.execution_errors
                + stats.completed
            )
            assert classified == stats.tests, key

    def test_faults_were_actually_injected(self, result):
        totals = result.totals()
        assert totals["faults_injected"] > 0
        assert totals["communication_errors"] > 0

    def test_all_wire_kinds_swept(self, result):
        swept = {key[2] for key in result.cells}
        assert swept == {kind.value for kind in DEFAULT_WIRE_FAULT_KINDS}

    def test_no_orphaned_threads_after_sweep(self, result):
        assert _no_wire_threads()


class TestDeterminism:
    def test_wire_sweep_is_seed_deterministic(self):
        config = _resilience_config("wire")
        first = ResilienceCampaign(config).run()
        second = ResilienceCampaign(config).run()
        assert (canon.canonical_matrix("resilience", first)
                == canon.canonical_matrix("resilience", second))


pytestmark_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="kill/resume suite relies on the fork start method",
)


def _run_wire_until_killed(checkpoint_dir):
    # Own session so the SIGKILL takes out the whole process group.
    os.setsid()
    from repro.core.store import CampaignCheckpoint

    config = _resilience_config("wire")
    ResilienceCampaign(config).run(
        checkpoint=CampaignCheckpoint(checkpoint_dir)
    )


@pytestmark_fork
class TestKillResume:
    def test_sigkill_mid_wire_sweep_resumes_without_orphans(self, tmp_path):
        """A hard kill mid-wire-request must leave nothing behind on
        resume: listener sockets die with the killed process, and the
        resumed sweep binds fresh ephemeral ports, completes, matches
        the uninterrupted matrix and leaves no wire threads."""
        from repro.core.store import CampaignCheckpoint

        checkpoint_dir = tmp_path / "ck"
        context = multiprocessing.get_context("fork")
        child = context.Process(
            target=_run_wire_until_killed, args=(str(checkpoint_dir),)
        )
        child.start()
        # Kill as soon as the first slice is checkpointed — the child
        # is then mid-sweep, with a live wire listener per transport.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if checkpoint_dir.is_dir() and any(
                name.endswith(".json") and name != "manifest.json"
                for name in os.listdir(checkpoint_dir)
            ):
                break
            time.sleep(0.05)
        else:
            child.terminate()
            pytest.fail("no checkpoint slice appeared before the deadline")
        os.killpg(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        config = _resilience_config("wire")
        resumed = ResilienceCampaign(config).run(
            checkpoint=CampaignCheckpoint(str(checkpoint_dir))
        )
        uninterrupted = ResilienceCampaign(config).run()
        assert (canon.canonical_matrix("resilience", resumed)
                == canon.canonical_matrix("resilience", uninterrupted))
        assert _no_wire_threads()
