"""Shared fixtures.

Campaign runs are expensive, so they are session-scoped: the full
paper-scale campaign (79,629 tests, ~20 s) runs at most once per pytest
session, and the quick campaign (scaled-down corpora, same quirk
coverage) is what most integration tests use.
"""

from __future__ import annotations

import pytest

from repro.core import Campaign, CampaignConfig
from repro.typesystem import (
    QUICK_DOTNET_QUOTAS,
    QUICK_JAVA_QUOTAS,
    build_dotnet_catalog,
    build_java_catalog,
)


@pytest.fixture(scope="session")
def java_catalog():
    return build_java_catalog()


@pytest.fixture(scope="session")
def dotnet_catalog():
    return build_dotnet_catalog()


@pytest.fixture(scope="session")
def quick_java_catalog():
    return build_java_catalog(QUICK_JAVA_QUOTAS)


@pytest.fixture(scope="session")
def quick_dotnet_catalog():
    return build_dotnet_catalog(QUICK_DOTNET_QUOTAS)


@pytest.fixture(scope="session")
def quick_campaign_result():
    config = CampaignConfig(
        java_quotas=QUICK_JAVA_QUOTAS, dotnet_quotas=QUICK_DOTNET_QUOTAS
    )
    return Campaign(config).run()


@pytest.fixture(scope="session")
def full_campaign_result():
    return Campaign(CampaignConfig()).run()
