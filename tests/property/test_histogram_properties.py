"""Property-based invariants of the mergeable fixed-bucket histogram.

The perf ledger diffs medians of histograms that were merged across
worker processes in canonical shard order, so merge must behave like a
commutative monoid over observation multisets: empty histograms are
two-sided identities, merging is associative over any grouping, and the
merged counts equal observing the concatenated samples directly.  A
single observation must report itself exactly — the ledger records
one-span stages (campaign, server) whose medians would otherwise be
bucket-interpolation artefacts.
"""

from hypothesis import given, settings, strategies as st

from repro.obs import Histogram

#: Latencies spanning the bucket layout, including the +Inf overflow.
samples = st.lists(
    st.floats(min_value=0.0, max_value=50000.0,
              allow_nan=False, allow_infinity=False),
    max_size=40,
)


def _filled(values):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


def _state(histogram):
    return (tuple(histogram.bounds), tuple(histogram.counts),
            histogram.count, round(histogram.total, 6))


@given(samples)
@settings(max_examples=60, deadline=None)
def test_empty_merge_is_identity_both_sides(values):
    histogram = _filled(values)
    before = _state(histogram)
    histogram.merge(Histogram())
    assert _state(histogram) == before

    receiver = Histogram()
    receiver.merge(_filled(values))
    assert _state(receiver) == _state(_filled(values))


@given(samples, samples, samples)
@settings(max_examples=60, deadline=None)
def test_merge_is_associative(a, b, c):
    left = _filled(a)
    left.merge(_filled(b))
    left.merge(_filled(c))

    bc = _filled(b)
    bc.merge(_filled(c))
    right = _filled(a)
    right.merge(bc)

    assert _state(left) == _state(right)
    assert _state(left) == _state(_filled(a + b + c))


@given(samples, samples)
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative(a, b):
    ab = _filled(a)
    ab.merge(_filled(b))
    ba = _filled(b)
    ba.merge(_filled(a))
    assert _state(ab) == _state(ba)


@given(st.floats(min_value=0.0, max_value=100000.0,
                 allow_nan=False, allow_infinity=False))
@settings(max_examples=60, deadline=None)
def test_single_observation_quantiles_are_exact(value):
    histogram = Histogram()
    histogram.observe(value)
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert histogram.quantile(q) == value


@given(samples)
@settings(max_examples=60, deadline=None)
def test_quantiles_and_mad_never_crash_and_stay_in_range(values):
    histogram = _filled(values)
    median = histogram.quantile(0.5)
    assert median >= 0.0
    assert histogram.mad() >= 0.0
    if not values:
        assert median == 0.0 and histogram.mad() == 0.0
    if len(values) < 2:
        assert histogram.mad() == 0.0
