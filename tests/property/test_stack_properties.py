"""Property-based tests for the WSDL/SOAP stacks and service emission."""

import string

from hypothesis import given, settings, strategies as st

from repro.appservers import GlassFish
from repro.frameworks.registry import all_client_frameworks
from repro.services import ServiceDefinition
from repro.soap import decode_wrapper, encode_wrapper
from repro.typesystem import Language, Property, SimpleType, TypeInfo
from repro.typesystem.synthesis import PROPERTY_NAMES
from repro.wsdl import read_wsdl_text, serialize_wsdl
from repro.wsi import check_document
from repro.xmlcore import QName

_CLIENTS = all_client_frameworks()

property_names = st.sampled_from(PROPERTY_NAMES)
simple_types = st.sampled_from(list(SimpleType))

bean_properties = st.lists(
    st.builds(
        Property,
        property_names,
        simple_types,
        st.booleans(),
        st.just(False),
    ),
    min_size=1,
    max_size=6,
    unique_by=lambda prop: prop.name,
)

type_names = st.builds(
    lambda a, b: a + b,
    st.sampled_from(["Alpha", "Beta", "Gamma", "Delta", "Sigma"]),
    st.sampled_from(["Holder", "Record", "Entry", "Value", "Packet"]),
)

plain_types = st.builds(
    lambda name, props: TypeInfo(
        Language.JAVA, "pkg.generated", name, properties=tuple(props)
    ),
    type_names,
    bean_properties,
)


class TestEmittedWsdlProperties:
    @given(entry=plain_types)
    @settings(max_examples=60, deadline=None)
    def test_emitted_wsdl_roundtrips_and_passes_wsi(self, entry):
        record = GlassFish().deploy(ServiceDefinition(entry))
        assert record.accepted
        document = read_wsdl_text(record.wsdl_text)
        assert check_document(document).clean
        assert len(document.operations) == 1
        bean = document.schemas[0].complex_type(entry.name)
        assert len(bean.particles) == len(entry.properties)

    @given(entry=plain_types)
    @settings(max_examples=30, deadline=None)
    def test_every_client_generates_from_plain_wsdl(self, entry):
        record = GlassFish().deploy(ServiceDefinition(entry))
        document = read_wsdl_text(record.wsdl_text)
        for client_id, client in _CLIENTS.items():
            result = client.generate(document)
            assert result.succeeded, (client_id, [str(d) for d in result.errors])
            if client.requires_compilation:
                compiled = client.compiler.compile(result.bundle)
                assert compiled.succeeded, (client_id, [str(d) for d in compiled.errors])

    @given(entry=plain_types)
    @settings(max_examples=30, deadline=None)
    def test_serialization_deterministic(self, entry):
        record_a = GlassFish().deploy(ServiceDefinition(entry))
        record_b = GlassFish().deploy(ServiceDefinition(entry))
        assert record_a.wsdl_text == record_b.wsdl_text

    @given(entry=plain_types)
    @settings(max_examples=30, deadline=None)
    def test_reparse_is_stable(self, entry):
        record = GlassFish().deploy(ServiceDefinition(entry))
        document = read_wsdl_text(record.wsdl_text)
        again = read_wsdl_text(serialize_wsdl(document))
        assert again.operations == document.operations
        assert again.messages == document.messages


_scalar_values = st.text(
    alphabet=string.ascii_letters + string.digits + " .-_",
    max_size=12,
)


@st.composite
def wrapper_values(draw, depth=1):
    keys = draw(st.lists(property_names, min_size=1, max_size=4, unique=True))
    values = {}
    for key in keys:
        choice = draw(st.integers(min_value=0, max_value=3 if depth else 2))
        if choice == 0:
            values[key] = draw(_scalar_values)
        elif choice == 1:
            values[key] = None
        elif choice == 2:
            values[key] = draw(st.lists(_scalar_values, min_size=2, max_size=3))
        else:
            values[key] = draw(wrapper_values(depth=depth - 1))
    return values


class TestSoapEncodingProperties:
    @given(values=wrapper_values())
    @settings(max_examples=150, deadline=None)
    def test_wrapper_roundtrip(self, values):
        wrapper = encode_wrapper(QName("urn:x", "echo"), values)
        assert decode_wrapper(wrapper) == values
