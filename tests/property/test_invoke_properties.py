"""Property-based tests for the invocation payload generator."""

import json
import string

from hypothesis import given, settings, strategies as st

from repro.frameworks.server.common import build_echo_wsdl
from repro.invoke import PayloadGenerator, request_shape
from repro.services.model import ServiceDefinition
from repro.typesystem.model import Language, Property, SimpleType, TypeInfo
from repro.xmlcore import QName, XSD_NS
from repro.xsd.lexical import lexical_ok
from repro.xsd.model import ComplexType, ElementParticle, SimpleTypeDecl

property_names = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(list(string.ascii_lowercase)),
    st.text(alphabet=string.ascii_letters + string.digits, max_size=8),
)

simple_types = st.sampled_from(list(SimpleType))


@st.composite
def bean_types(draw):
    """A random echo-bean TypeInfo with unique property names."""
    names = draw(st.lists(property_names, min_size=0, max_size=6, unique=True))
    properties = tuple(
        Property(
            name,
            value_type=draw(simple_types),
            is_array=draw(st.booleans()),
            nillable_value=draw(st.booleans()),
        )
        for name in names
    )
    return TypeInfo(
        language=Language.JAVA,
        namespace="prop.test",
        name="Bean" + draw(property_names).capitalize(),
        properties=properties,
    )


def _document_for(type_info):
    service = ServiceDefinition(parameter_type=type_info)
    return service, build_echo_wsdl(service, "http://test.invalid/endpoint")


class TestGeneratorProperties:
    @given(type_info=bean_types(), seed=st.integers(0, 2**31))
    @settings(max_examples=120, deadline=None)
    def test_same_seed_is_byte_identical(self, type_info, seed):
        service, document = _document_for(type_info)
        first = PayloadGenerator(seed).generate(document, service.name)
        second = PayloadGenerator(seed).generate(document, service.name)
        assert json.dumps(
            [[p.label, p.values] for p in first], sort_keys=True
        ) == json.dumps([[p.label, p.values] for p in second], sort_keys=True)
        assert [p.digest for p in first] == [p.digest for p in second]

    @given(type_info=bean_types(), seed=st.integers(0, 2**31))
    @settings(max_examples=120, deadline=None)
    def test_every_value_matches_its_source_xsd_type(self, type_info, seed):
        service, document = _document_for(type_info)
        fields = {field.name: field for field in request_shape(document)}
        for payload in PayloadGenerator(seed).generate(document, service.name):
            if not fields:
                assert payload.values == {"state": "Ready"}
                continue
            for name, value in payload.values.items():
                field = fields[name]
                items = value if isinstance(value, list) else [value]
                if isinstance(value, list):
                    assert field.repeated, field.name
                for item in items:
                    if item is None:
                        assert field.nillable, field.name
                    elif field.enumerations:
                        assert item in field.enumerations
                    else:
                        assert lexical_ok(field.xsd_local, item), (
                            field.name, field.xsd_local, item,
                        )

    @given(type_info=bean_types(), seed=st.integers(0, 2**31))
    @settings(max_examples=120, deadline=None)
    def test_required_fields_are_never_omitted(self, type_info, seed):
        service, document = _document_for(type_info)
        required = [
            field.name
            for field in request_shape(document)
            if not field.optional
        ]
        for payload in PayloadGenerator(seed).generate(document, service.name):
            for name in required:
                assert name in payload.values, (payload.label, name)

    @given(
        values=st.lists(
            st.sampled_from(["Alpha", "Beta", "Gamma", "Delta"]),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_enum_payloads_stay_inside_the_value_space(self, values, seed):
        # A bean whose ``shade`` field references a named enum simple type.
        def emitter(type_info, schema):
            tns = schema.target_namespace
            schema.simple_types.append(
                SimpleTypeDecl(
                    name="Shade",
                    base=QName(XSD_NS, "string"),
                    enumerations=tuple(values),
                )
            )
            schema.complex_types.append(
                ComplexType(
                    name=type_info.name,
                    particles=[
                        ElementParticle(
                            name="shade", type_name=QName(tns, "Shade")
                        )
                    ],
                )
            )
            return QName(tns, type_info.name)

        type_info = TypeInfo(
            language=Language.JAVA, namespace="prop.test", name="Palette"
        )
        service = ServiceDefinition(parameter_type=type_info)
        document = build_echo_wsdl(
            service, "http://test.invalid/endpoint", type_emitter=emitter
        )
        fields = request_shape(document)
        assert any(field.enumerations for field in fields)
        payloads = PayloadGenerator(seed).generate(document, service.name)
        assert payloads
        for payload in payloads:
            value = payload.values.get("shade")
            if value is None:
                continue
            items = value if isinstance(value, list) else [value]
            for item in items:
                assert item in values
