"""Property-based invariants of calibration and campaign accounting."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.outcomes import ClientTestRecord, classify
from repro.core.results import CampaignResult, CellStats, ServerRunReport
from repro.typesystem import build_java_catalog
from repro.typesystem.quotas import JavaCatalogQuotas


@st.composite
def java_quotas(draw):
    total = draw(st.integers(min_value=150, max_value=600))
    metro = draw(st.integers(min_value=60, max_value=max(61, total - 60)))
    assume(metro + 2 <= total)
    jbossws_core = draw(st.integers(min_value=30, max_value=metro))
    throwable_metro = draw(st.integers(min_value=4, max_value=min(40, metro // 3)))
    throwable_jbossws = draw(st.integers(min_value=4, max_value=throwable_metro))
    # The CXF-rejected pool must be able to absorb the throwable gap.
    assume(metro - jbossws_core >= throwable_metro - throwable_jbossws)
    script = draw(st.integers(min_value=0, max_value=min(5, jbossws_core // 8)))
    quotas = JavaCatalogQuotas(
        total=total,
        metro_bindable=metro,
        jbossws_bindable=jbossws_core + 2,
        throwable_total=throwable_metro + draw(st.integers(0, 10)),
        throwable_metro=throwable_metro,
        throwable_jbossws=throwable_jbossws,
        script_unfriendly=script,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    try:
        quotas.validate()
    except ValueError:
        assume(False)
    return quotas


class TestCalibrationProperties:
    @given(quotas=java_quotas())
    @settings(max_examples=25, deadline=None)
    def test_synthesis_hits_arbitrary_quotas(self, quotas):
        try:
            catalog = build_java_catalog(quotas)
        except ValueError:
            # Some quota combinations leave no room for a structural
            # bucket; rejecting them loudly is the contract.
            return
        from repro.typesystem import CtorVisibility, Trait

        def metro_binds(entry):
            return (
                entry.is_concrete_class
                and not entry.is_generic
                and entry.ctor in (CtorVisibility.PUBLIC, CtorVisibility.PROTECTED)
            )

        def jbossws_binds(entry):
            if entry.has_trait(Trait.ASYNC_HANDLE):
                return True
            return (
                entry.is_concrete_class
                and not entry.is_generic
                and entry.ctor is CtorVisibility.PUBLIC
            )

        assert len(catalog) == quotas.total
        assert sum(1 for e in catalog if metro_binds(e)) == quotas.metro_bindable
        assert sum(1 for e in catalog if jbossws_binds(e)) == quotas.jbossws_bindable


step_outcomes = st.builds(
    classify,
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)

records = st.builds(
    ClientTestRecord,
    st.sampled_from(["metro", "jbossws", "wcf"]),
    st.sampled_from(["metro", "axis1", "suds"]),
    st.sampled_from(["SvcA", "SvcB", "SvcC"]),
    step_outcomes,
    step_outcomes,
)


class TestAccountingProperties:
    @given(batch=st.lists(records, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_cell_counts_bounded_by_tests(self, batch):
        result = CampaignResult(
            server_ids=("metro", "jbossws", "wcf"),
            client_ids=("metro", "axis1", "suds"),
        )
        for server_id in result.server_ids:
            result.servers[server_id] = ServerRunReport(server_id=server_id)
        for record in batch:
            result.add_record(record)
        assert result.tests_executed == len(batch)
        for cell in result.cells.values():
            assert cell.gen_warning_tests <= cell.tests
            assert cell.gen_error_tests <= cell.tests
            assert cell.comp_warning_tests <= cell.tests
            assert cell.comp_error_tests <= cell.tests

    @given(batch=st.lists(records, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_totals_equal_sum_of_cells(self, batch):
        result = CampaignResult(
            server_ids=("metro", "jbossws", "wcf"),
            client_ids=("metro", "axis1", "suds"),
        )
        for server_id in result.server_ids:
            result.servers[server_id] = ServerRunReport(server_id=server_id)
        for record in batch:
            result.add_record(record)
        totals = result.totals()
        assert totals["gen_error_tests"] == sum(
            c.gen_error_tests for c in result.cells.values()
        )
        assert totals["error_situations"] == sum(
            c.error_tests for c in result.cells.values()
        )

    @given(outcome=step_outcomes)
    @settings(max_examples=60, deadline=None)
    def test_classification_consistent(self, outcome):
        if outcome.error_count:
            assert outcome.status.value == "error"
        elif outcome.warning_count:
            assert outcome.status.value == "warning"
        else:
            assert outcome.status.value == "ok"
