"""Property-based tests for the XML substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlcore import Element, QName, XmlParseError, parse, serialize

_NAME_START = string.ascii_letters + "_"
_NAME_CHARS = string.ascii_letters + string.digits + "_-."

names = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(list(_NAME_START)),
    st.text(alphabet=_NAME_CHARS, max_size=8),
)

namespaces = st.one_of(
    st.none(),
    st.builds(lambda suffix: f"urn:ns:{suffix}", st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)),
)

qnames = st.builds(lambda ns, local: QName(ns, local), namespaces, names)

text_content = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_characters="\r",  # the writer does not normalize CR
        exclude_categories=("Cs", "Cc"),
    ),
    min_size=1,
    max_size=40,
)

attribute_values = text_content | st.just("")


@st.composite
def elements(draw, depth=3):
    element = Element(draw(qnames))
    for attr_name in draw(st.lists(names, max_size=3, unique=True)):
        element.set(QName(attr_name), draw(attribute_values))
    if depth > 0:
        for child in draw(st.lists(elements(depth=depth - 1), max_size=3)):
            element.add_child(child)
    if draw(st.booleans()):
        text = draw(text_content)
        if text.strip():
            element.add_text(text)
    return element


class TestRoundTrip:
    @given(tree=elements())
    @settings(max_examples=200, deadline=None)
    def test_serialize_parse_roundtrip(self, tree):
        reparsed = parse(serialize(tree))
        assert reparsed.structurally_equal(tree)

    @given(tree=elements())
    @settings(max_examples=100, deadline=None)
    def test_compact_and_pretty_agree(self, tree):
        compact = parse(serialize(tree, pretty=False))
        pretty = parse(serialize(tree, pretty=True))
        assert compact.structurally_equal(pretty)

    @given(value=text_content)
    @settings(max_examples=200, deadline=None)
    def test_attribute_value_roundtrip(self, value):
        element = Element(QName("a"))
        element.set(QName("v"), value)
        reparsed = parse(serialize(element))
        assert reparsed.get(QName("v")) == value

    @given(value=text_content)
    @settings(max_examples=200, deadline=None)
    def test_text_roundtrip(self, value):
        reparsed = parse(serialize(Element(QName("a"), text=value)))
        assert reparsed.text == value


class TestParserTotality:
    @given(blob=st.text(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_parser_never_raises_unexpected(self, blob):
        try:
            root = parse(blob)
        except XmlParseError:
            return
        except (ValueError, OverflowError):
            # numeric character references can overflow chr(); both are
            # reported through normal exception types, never crashes.
            return
        assert isinstance(root, Element)

    @given(tree=elements(depth=2))
    @settings(max_examples=100, deadline=None)
    def test_serialization_is_deterministic(self, tree):
        assert serialize(tree) == serialize(tree)
