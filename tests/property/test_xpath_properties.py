"""Property-based tests for the XPath-lite selector."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlcore import Element, QName, select
from repro.xmlcore.xpath import select_one

_NAMES = ("alpha", "beta", "gamma", "delta")

names = st.sampled_from(_NAMES)


@st.composite
def trees(draw, depth=3):
    element = Element(QName(draw(names)))
    if draw(st.booleans()):
        element.set(QName("id"), draw(st.text(alphabet=string.digits, min_size=1, max_size=3)))
    if depth > 0:
        for child in draw(st.lists(trees(depth=depth - 1), max_size=3)):
            element.add_child(child)
    return element


def _count_descendants(element, local):
    return sum(
        1 for node in element.iter() if node is not element and node.name.local == local
    )


class TestSelectorProperties:
    @given(tree=trees(), name=names)
    @settings(max_examples=150, deadline=None)
    def test_descendant_step_matches_manual_walk(self, tree, name):
        assert len(select(tree, f"//{name}")) == _count_descendants(tree, name)

    @given(tree=trees(), name=names)
    @settings(max_examples=150, deadline=None)
    def test_child_step_is_prefix_of_descendants(self, tree, name):
        children = select(tree, name)
        descendants = select(tree, f"//{name}")
        assert len(children) <= len(descendants)
        for node in children:
            assert node in descendants

    @given(tree=trees())
    @settings(max_examples=100, deadline=None)
    def test_wildcard_counts_children(self, tree):
        assert len(select(tree, "*")) == len(tree.children)

    @given(tree=trees(), name=names)
    @settings(max_examples=100, deadline=None)
    def test_position_predicate_selects_single(self, tree, name):
        matches = select(tree, f"//{name}")
        for index in range(1, len(matches) + 1):
            picked = select(tree, f"//{name}[{index}]")
            assert picked == [matches[index - 1]]

    @given(tree=trees())
    @settings(max_examples=100, deadline=None)
    def test_attribute_terminal_only_existing(self, tree):
        values = select(tree, "//*[@id]/@id")
        assert all(isinstance(value, str) for value in values)
        with_attr = [
            node for node in tree.iter()
            if node is not tree and node.get("id") is not None
        ]
        assert len(values) == len(with_attr)

    @given(tree=trees(), name=names)
    @settings(max_examples=100, deadline=None)
    def test_select_one_agrees_with_select(self, tree, name):
        matches = select(tree, f"//{name}")
        first = select_one(tree, f"//{name}")
        if matches:
            assert first is matches[0]
        else:
            assert first is None
