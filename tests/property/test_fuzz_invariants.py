"""Corpus-driven totality invariants over 500+ seeded mutants.

The robustness contract of the harness: feed any corrupted description
to the wsdl2code front door and every layer fails *classified* —

* ``xmlcore.parser`` raises only its own :class:`XmlError` family;
* the WSDL read path raises only (XmlError, WsdlError, SchemaError);
* the guarded generate/compile pipeline never produces a
  ``tool-internal`` verdict for any client framework.

The corpus is seeded, so a violation here is a reproducible bug report:
the (seed, kind, intensity, index) recipe pins the offending mutant.
"""

import pytest

from repro.appservers import GlassFish, IisExpress, JBossAs
from repro.faults import DEFAULT_MUTATION_KINDS, WsdlMutator
from repro.faults.campaign import FuzzCampaign, FuzzCampaignConfig
from repro.frameworks.registry import all_client_frameworks
from repro.runtime import GuardLimits, TriageBucket
from repro.services import ServiceDefinition
from repro.typesystem import Language, Property, SimpleType, TypeInfo
from repro.wsdl.errors import WsdlError
from repro.wsdl.reader import read_wsdl
from repro.xmlcore import parse
from repro.xmlcore.errors import XmlError
from repro.xsd.errors import SchemaError

SEED = 20140622
INTENSITIES = (0.0, 0.5, 1.0)
MUTANTS_PER_CONFIG = 8
PIPELINE_CLIENTS = ("suds", "metro", "dotnet-cs", "gsoap")


def _deploy(container, name, extra=()):
    entry = TypeInfo(
        Language.JAVA, "pkg", name,
        properties=(
            Property("label", SimpleType.STRING),
            Property("count", SimpleType.INT),
        ) + tuple(extra),
    )
    record = container.deploy(ServiceDefinition(entry))
    assert record.accepted
    return record


@pytest.fixture(scope="module")
def base_texts():
    return [
        _deploy(GlassFish(), "AlphaSvc").wsdl_text,
        _deploy(
            JBossAs(), "BetaSvc",
            extra=(Property("ratio", SimpleType.DOUBLE),),
        ).wsdl_text,
        _deploy(IisExpress(), "GammaSvc").wsdl_text,
    ]


def _mutants(base_texts):
    """Yield 500+ seeded mutants, never holding the whole corpus."""
    mutator = WsdlMutator(SEED)
    for doc_index, text in enumerate(base_texts):
        for kind in DEFAULT_MUTATION_KINDS:
            for intensity in INTENSITIES:
                for index in range(MUTANTS_PER_CONFIG):
                    yield mutator.mutate(
                        text, kind, intensity, f"doc{doc_index}", index
                    )


def test_corpus_is_large_enough(base_texts):
    count = (
        len(base_texts) * len(DEFAULT_MUTATION_KINDS)
        * len(INTENSITIES) * MUTANTS_PER_CONFIG
    )
    assert count >= 500


def test_parser_never_raises_unclassified(base_texts):
    for mutant in _mutants(base_texts):
        try:
            parse(mutant.text)
        except XmlError:
            pass  # classified rejection: the healthy outcome
        except Exception as exc:  # noqa: BLE001 — the invariant under test
            pytest.fail(
                f"xmlcore.parse escaped with {type(exc).__name__} "
                f"on {mutant!r}: {exc}"
            )


def test_wsdl_read_path_never_raises_unclassified(base_texts):
    for mutant in _mutants(base_texts):
        try:
            read_wsdl(parse(mutant.text))
        except (XmlError, WsdlError, SchemaError):
            pass
        except Exception as exc:  # noqa: BLE001 — the invariant under test
            pytest.fail(
                f"WSDL read escaped with {type(exc).__name__} "
                f"on {mutant!r}: {exc}"
            )


def test_guarded_pipeline_is_total(base_texts):
    campaign = FuzzCampaign(FuzzCampaignConfig())
    limits = GuardLimits(deadline_seconds=None)
    clients = {
        client_id: client
        for client_id, client in all_client_frameworks().items()
        if client_id in PIPELINE_CLIENTS
    }
    assert len(clients) == len(PIPELINE_CLIENTS)
    for mutant in _mutants(base_texts):
        for client_id, client in clients.items():
            bucket, rejected, detail = campaign._drive(mutant, client, limits)
            assert bucket is not TriageBucket.TOOL_INTERNAL, (
                f"{client_id} escaped unclassified on {mutant!r}: {detail}"
            )
