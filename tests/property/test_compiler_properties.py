"""Property-based tests for the compiler simulators."""

import string

from hypothesis import assume, given, settings, strategies as st

from repro.artifacts import ArtifactBundle, CodeUnit, FieldDecl, MethodDecl, UnitKind
from repro.compilers import (
    CSharpCompiler,
    JavaCompiler,
    VisualBasicCompiler,
)

identifiers = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(list(string.ascii_lowercase)),
    st.text(alphabet=string.ascii_letters + string.digits, max_size=6),
)

type_texts = st.sampled_from(["String", "int", "long", "boolean", "Object"])


@st.composite
def clean_units(draw):
    """A unit with distinct fields and only resolvable references."""
    field_names = draw(
        st.lists(identifiers, min_size=0, max_size=5, unique=True)
    )
    fields = [FieldDecl(name, draw(type_texts)) for name in field_names]
    methods = []
    if field_names and draw(st.booleans()):
        target = draw(st.sampled_from(field_names))
        methods.append(MethodDecl(f"get_{target}", references=(target,)))
    return CodeUnit(
        draw(identifiers).capitalize() + "Unit",
        UnitKind.BEAN,
        "java",
        fields=fields,
        methods=methods,
    )


def _bundle(units):
    bundle = ArtifactBundle(tool="t", service="s")
    bundle.units.extend(units)
    return bundle


class TestCompilerProperties:
    @given(units=st.lists(clean_units(), max_size=4))
    @settings(max_examples=120, deadline=None)
    def test_clean_units_always_compile(self, units):
        names = [unit.name for unit in units]
        assume(len(names) == len(set(names)))
        for compiler in (JavaCompiler(), CSharpCompiler()):
            assert compiler.compile(_bundle(units)).succeeded

    @given(unit=clean_units(), duplicate_index=st.integers(0, 10))
    @settings(max_examples=120, deadline=None)
    def test_planted_duplicate_always_detected(self, unit, duplicate_index):
        assume(unit.fields)
        victim = unit.fields[duplicate_index % len(unit.fields)]
        unit.fields.append(FieldDecl(victim.name, "long"))
        result = JavaCompiler().compile(_bundle([unit]))
        assert any(d.code == "duplicate-member" for d in result.errors)

    @given(unit=clean_units(), ghost=identifiers)
    @settings(max_examples=120, deadline=None)
    def test_planted_unresolved_reference_always_detected(self, unit, ghost):
        ghost = f"zz_{ghost}"  # cannot collide with generated names
        unit.methods.append(MethodDecl("broken", references=(ghost,)))
        result = JavaCompiler().compile(_bundle([unit]))
        assert any(
            d.code == "unresolved-symbol" and ghost in d.message
            for d in result.errors
        )

    @given(unit=clean_units())
    @settings(max_examples=120, deadline=None)
    def test_vb_flags_any_case_collision(self, unit):
        assume(unit.fields)
        victim = unit.fields[0]
        flipped = victim.name.swapcase()
        assume(flipped != victim.name)
        unit.fields.append(FieldDecl(flipped, victim.type_text))
        vb_result = VisualBasicCompiler().compile(_bundle([unit]))
        cs_result = CSharpCompiler().compile(_bundle([unit]))
        assert not vb_result.succeeded
        assert cs_result.succeeded

    @given(units=st.lists(clean_units(), max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_compilation_is_deterministic(self, units):
        names = [unit.name for unit in units]
        assume(len(names) == len(set(names)))
        first = JavaCompiler().compile(_bundle(units))
        second = JavaCompiler().compile(_bundle(units))
        assert [str(d) for d in first.diagnostics] == [
            str(d) for d in second.diagnostics
        ]
