"""Property-based invariants of the drift diff engine.

The gate's trustworthiness rests on three properties, checked here for
all four campaign types over randomly generated canonical matrices:

* reflexivity — ``diff(X, X)`` is empty;
* canonical ordering — entries always come back sorted by cell key, so
  the same pair of matrices renders a byte-identical report;
* totality — every generated delta either lands in the closed taxonomy
  or raises :class:`UnclassifiedDriftError`; no delta is silently
  dropped.
"""

from hypothesis import given, settings, strategies as st

from repro.core.canon import CAMPAIGN_KINDS, CELL_STATUSES
from repro.regress.diff import (
    DriftClass,
    UnclassifiedDriftError,
    classify_cell,
    diff_matrices,
    totals_delta,
)

#: Per-kind coordinate widths, matching the campaigns' cell keys.
_KEY_PARTS = {"run": 2, "resilience": 4, "fuzz": 4, "invoke": 3}

_METRICS = ("tests", "errors", "quarantined")

campaign_kinds = st.sampled_from(CAMPAIGN_KINDS)


def _cells(kind):
    part = st.text(
        alphabet="abcdefgh0123456789", min_size=1, max_size=4
    )
    key = st.builds(
        "|".join, st.lists(
            part, min_size=_KEY_PARTS[kind], max_size=_KEY_PARTS[kind]
        )
    )
    cell = st.fixed_dictionaries(
        {
            "status": st.sampled_from(CELL_STATUSES),
            "metrics": st.fixed_dictionaries(
                {name: st.integers(min_value=0, max_value=9)
                 for name in _METRICS}
            ),
        }
    )
    return st.dictionaries(key, cell, max_size=8)


@st.composite
def kind_and_matrices(draw):
    kind = draw(campaign_kinds)
    return kind, draw(_cells(kind)), draw(_cells(kind))


@st.composite
def kind_and_matrix(draw):
    kind = draw(campaign_kinds)
    return kind, draw(_cells(kind))


class TestDiffProperties:
    @settings(max_examples=60, deadline=None)
    @given(data=kind_and_matrix())
    def test_diff_x_x_is_empty(self, data):
        kind, cells = data
        assert diff_matrices(kind, cells, dict(cells)) == []

    @settings(max_examples=60, deadline=None)
    @given(data=kind_and_matrix())
    def test_totals_delta_x_x_is_empty(self, data):
        kind, cells = data
        totals = {"tests": sum(
            cell["metrics"]["tests"] for cell in cells.values()
        )}
        assert totals_delta(kind, totals, dict(totals)) == {}

    @settings(max_examples=60, deadline=None)
    @given(data=kind_and_matrices())
    def test_output_ordering_is_canonical(self, data):
        kind, before, after = data
        entries = diff_matrices(kind, before, after)
        keys = [entry.cell for entry in entries]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    @settings(max_examples=60, deadline=None)
    @given(data=kind_and_matrices())
    def test_every_delta_is_classified(self, data):
        """Totality: each differing cell appears exactly once with one
        of the six classes; identical cells never appear."""
        kind, before, after = data
        entries = diff_matrices(kind, before, after)
        by_key = {entry.cell: entry for entry in entries}
        for key in set(before) | set(after):
            old, new = before.get(key), after.get(key)
            if old == new:
                assert key not in by_key
            else:
                assert by_key[key].drift in DriftClass

    @settings(max_examples=60, deadline=None)
    @given(data=kind_and_matrices())
    def test_diff_is_deterministic(self, data):
        kind, before, after = data
        first = diff_matrices(kind, before, after)
        second = diff_matrices(kind, before, after)
        assert [e.to_obj() for e in first] == [e.to_obj() for e in second]

    @settings(max_examples=60, deadline=None)
    @given(
        kind=campaign_kinds,
        status=st.text(min_size=1, max_size=8).filter(
            lambda s: s not in CELL_STATUSES
        ),
    )
    def test_unknown_status_never_classifies(self, kind, status):
        good = {"status": "pass", "metrics": {"tests": 1}}
        bad = {"status": status, "metrics": {"tests": 1}}
        try:
            classify_cell(kind, "a|b|c|d"[: 2 * _KEY_PARTS[kind] - 1],
                          good, bad)
        except UnclassifiedDriftError:
            return
        raise AssertionError("unknown status escaped the taxonomy")
